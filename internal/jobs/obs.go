package jobs

// Observability wiring for the job queue: counters and histograms are fed
// inline on the submit/execute paths; the queue-depth gauges are refreshed
// by the registry's collect hook at scrape time, mirroring the session
// manager's pattern (internal/serve/obs.go).

import "nbody/internal/obs"

// instruments holds every obs metric the job subsystem feeds. Names are
// stable API, documented in the README's Batch jobs section.
type instruments struct {
	submitted *obs.CounterVec // class
	finished  *obs.CounterVec // state: succeeded | failed | cancelled
	rejected  *obs.Counter
	retries   *obs.Counter
	requeued  *obs.Counter
	pruned    *obs.Counter

	reprioritized *obs.Counter

	recordErrors *obs.Counter

	// Multi-tenant accounting (series exist only when Config.TenantQueues
	// declares tenants; label cardinality is bounded by that map).
	tenantRejected *obs.CounterVec // tenant
	tenantQueued   *obs.GaugeVec   // tenant

	waitSeconds *obs.HistogramVec // class
	runSeconds  *obs.HistogramVec // class

	// Refreshed at scrape time by the collect hook.
	queueDepth   *obs.GaugeVec // class
	runningGauge *obs.Gauge
}

// jobTimeBuckets spans 1ms to ~1.6h: queue waits are milliseconds on an
// idle pool, while a long batch run behind a backlog can wait and run for
// minutes to hours.
func jobTimeBuckets() []float64 { return obs.ExponentialBuckets(1e-3, 3, 14) }

// newInstruments registers the job queue's metric families in reg.
func newInstruments(reg *obs.Registry) *instruments {
	b := jobTimeBuckets()
	ins := &instruments{
		submitted: reg.CounterVec("nbody_jobs_submitted_total",
			"Batch jobs accepted into the queue, by priority class.", "class"),
		finished: reg.CounterVec("nbody_jobs_finished_total",
			"Batch jobs reaching a terminal state, by outcome.", "state"),
		rejected: reg.Counter("nbody_jobs_rejected_total",
			"Batch job submissions shed because the queue was full."),
		retries: reg.Counter("nbody_job_retries_total",
			"Chunk executions retried after a transient session-layer fault."),
		requeued: reg.Counter("nbody_jobs_requeued_total",
			"Running jobs checkpointed and returned to the queue by a drain or recovered mid-run after a crash."),
		pruned: reg.Counter("nbody_jobs_pruned_total",
			"Terminal job records removed by retention to bound memory."),

		reprioritized: reg.Counter("nbody_jobs_reprioritized_total",
			"Queued jobs moved to another priority class via PATCH /v1/jobs/{id}."),

		recordErrors: reg.Counter("nbody_job_record_errors_total",
			"Durable job-record commits that failed (the job continues from memory)."),

		tenantRejected: reg.CounterVec("nbody_jobs_tenant_rejected_total",
			"Job submissions shed by a per-tenant queue quota.", "tenant"),
		tenantQueued: reg.GaugeVec("nbody_jobs_tenant_queued",
			"Jobs waiting in the queue, by submitting tenant.", "tenant"),

		waitSeconds: reg.HistogramVec("nbody_job_wait_seconds",
			"Time from enqueue to dequeue, by priority class.", b, "class"),
		runSeconds: reg.HistogramVec("nbody_job_run_seconds",
			"Time from dequeue to terminal state, by priority class.", b, "class"),

		queueDepth: reg.GaugeVec("nbody_jobs_queue_depth",
			"Jobs waiting in the queue, by priority class.", "class"),
		runningGauge: reg.Gauge("nbody_jobs_running",
			"Jobs currently executing on the worker pool."),
	}
	// Touch the fixed label sets so every series renders from the first
	// scrape instead of materialising on first increment.
	for _, c := range classWeights {
		ins.submitted.With(c.name)
		ins.waitSeconds.With(c.name)
		ins.runSeconds.With(c.name)
	}
	for _, s := range []State{StateSucceeded, StateFailed, StateCancelled} {
		ins.finished.With(string(s))
	}
	return ins
}

// installCollectors registers the scrape-time refresh of the queue-depth
// gauges against m.
func (m *Manager) installCollectors() {
	ins := m.ins
	// Pre-touch the per-tenant series so every declared tenant renders from
	// the first scrape, not from its first submission or rejection.
	tenants := make([]string, 0, len(m.cfg.TenantQueues))
	for name := range m.cfg.TenantQueues {
		tenants = append(tenants, name)
		ins.tenantRejected.With(name)
		ins.tenantQueued.With(name)
	}
	m.cfg.Obs.Registry.OnCollect(func() {
		m.mu.Lock()
		depths := make(map[string]int, len(classWeights))
		byTenant := make(map[string]int, len(tenants))
		for _, c := range classWeights {
			q := m.queues[c.name]
			depths[c.name] = q.len()
			for t, l := range q.tenants {
				byTenant[t] += len(l)
			}
		}
		m.mu.Unlock()
		for _, c := range classWeights {
			ins.queueDepth.With(c.name).Set(float64(depths[c.name]))
		}
		for _, t := range tenants {
			ins.tenantQueued.With(t).Set(float64(byTenant[t]))
		}
	})
}
