package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbody/internal/store"
)

// fakeSession is one simulated session owned by fakeRunner.
type fakeSession struct {
	spec  SessionSpec
	steps int
}

// fakeRunner implements Runner in memory. stepHook, when set, runs at the
// start of every StepSession call with a 1-based global call index; a
// non-nil error is returned to the executor with zero progress.
type fakeRunner struct {
	mu       sync.Mutex
	nextID   int
	sessions map[string]*fakeSession
	created  []string // workloads in creation order
	deleted  []string

	validateErr error
	createErr   error
	stepHook    func(ctx context.Context, call int, sid string, n int) error
	calls       atomic.Int64
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{sessions: make(map[string]*fakeSession)}
}

func (f *fakeRunner) ValidateSession(spec SessionSpec) error { return f.validateErr }

func (f *fakeRunner) CreateSession(ctx context.Context, spec SessionSpec) (string, error) {
	if f.createErr != nil {
		return "", f.createErr
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	id := fmt.Sprintf("fs-%d", f.nextID)
	f.sessions[id] = &fakeSession{spec: spec}
	f.created = append(f.created, spec.Workload)
	return id, nil
}

func (f *fakeRunner) StepSession(ctx context.Context, id string, n int) (int, error) {
	f.mu.Lock()
	s, ok := f.sessions[id]
	f.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("fake: no session %s", id)
	}
	call := int(f.calls.Add(1))
	if f.stepHook != nil {
		if err := f.stepHook(ctx, call, id, n); err != nil {
			return 0, err
		}
	}
	f.mu.Lock()
	s.steps += n
	f.mu.Unlock()
	return n, nil
}

func (f *fakeRunner) SessionSteps(id string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sessions[id]
	if !ok {
		return 0, fmt.Errorf("fake: no session %s", id)
	}
	return s.steps, nil
}

func (f *fakeRunner) WriteSnapshot(id string, w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sessions[id]
	if !ok {
		return fmt.Errorf("fake: no session %s", id)
	}
	fmt.Fprintf(w, "snap:%s:%d", id, s.steps)
	return nil
}

func (f *fakeRunner) WriteTrace(id string, w io.Writer) error {
	fmt.Fprintf(w, "trace:%s", id)
	return nil
}

func (f *fakeRunner) DeleteSession(ctx context.Context, id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.sessions, id)
	f.deleted = append(f.deleted, id)
	return nil
}

func (f *fakeRunner) createdOrder() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.created...)
}

// newTestManager starts a manager over cfg (filling fast test defaults)
// and registers a drain on test cleanup.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitState(t *testing.T, m *Manager, id string, want State) Info {
	t.Helper()
	var info Info
	waitUntil(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		var err error
		info, err = m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		return info.State == want
	})
	return info
}

func spec(workload string, steps int) Spec {
	return Spec{
		SessionSpec: SessionSpec{Workload: workload, N: 32, DT: 1e-3},
		Steps:       steps,
	}
}

func TestJobLifecycleSucceeds(t *testing.T) {
	f := newFakeRunner()
	m := newTestManager(t, Config{Runner: f, Workers: 1})

	s := spec("plummer", 10)
	s.ChunkSteps = 4
	info, err := m.Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "j-1" || info.State != StateQueued || info.Class != ClassNormal {
		t.Fatalf("submit info %+v", info)
	}

	done := waitState(t, m, info.ID, StateSucceeded)
	if done.StepsDone != 10 {
		t.Errorf("steps_done = %d, want 10", done.StepsDone)
	}
	if done.SessionID == "" || done.Started.IsZero() || done.Finished.IsZero() {
		t.Errorf("terminal info incomplete: %+v", done)
	}
	if got, _ := f.SessionSteps(done.SessionID); got != 10 {
		t.Errorf("session stepped %d, want 10", got)
	}
	// Chunked: 10 steps at chunk 4 is 3 StepSession calls (4+4+2).
	if calls := f.calls.Load(); calls != 3 {
		t.Errorf("StepSession called %d times, want 3", calls)
	}
	if v := m.ins.finished.With(string(StateSucceeded)).Value(); v != 1 {
		t.Errorf("finished{succeeded} = %v, want 1", v)
	}
	if m.ins.waitSeconds.With(ClassNormal).Count() != 1 || m.ins.runSeconds.With(ClassNormal).Count() != 1 {
		t.Error("wait/run histograms not fed")
	}
}

func TestSubmitValidation(t *testing.T) {
	f := newFakeRunner()
	m := newTestManager(t, Config{Runner: f, MaxJobSteps: 100})

	cases := []Spec{
		func() Spec { s := spec("plummer", 10); s.Class = "urgent"; return s }(),
		spec("plummer", 0),
		spec("plummer", 101),
		func() Spec { s := spec("plummer", 10); s.ChunkSteps = -1; return s }(),
	}
	for i, s := range cases {
		if _, err := m.Submit(context.Background(), s); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: err = %v, want ErrBadRequest", i, err)
		}
	}

	f.validateErr = errors.New("no such workload")
	if _, err := m.Submit(context.Background(), spec("nope", 10)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("validate err = %v, want ErrBadRequest", err)
	}
}

// blockingRunner returns a fake whose first session ("primer" workload)
// blocks inside StepSession until release is closed; other jobs run free.
func primedRunner(release <-chan struct{}, started chan<- struct{}) *fakeRunner {
	f := newFakeRunner()
	var once sync.Once
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		f.mu.Lock()
		w := f.sessions[sid].spec.Workload
		f.mu.Unlock()
		if w == "primer" {
			once.Do(func() { close(started) })
			<-release
		}
		return nil
	}
	return f
}

func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	f := primedRunner(release, started)
	m := newTestManager(t, Config{Runner: f, Workers: 1, MaxQueue: 2})

	if _, err := m.Submit(context.Background(), spec("primer", 1)); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(context.Background(), spec("free", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(context.Background(), spec("free", 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if v := m.ins.rejected.Value(); v != 1 {
		t.Errorf("rejected = %v, want 1", v)
	}
	close(release)
}

func TestWeightedFairScheduling(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	f := primedRunner(release, started)
	m := newTestManager(t, Config{Runner: f, Workers: 1, MaxQueue: 16})

	if _, err := m.Submit(context.Background(), spec("primer", 1)); err != nil {
		t.Fatal(err)
	}
	<-started

	// Backlog all three classes behind the blocked worker: 4 high, 2
	// normal, 1 low, matching one full smooth-WRR cycle at weights 4:2:1.
	submit := func(workload, class string) {
		s := spec(workload, 1)
		s.Class = class
		if _, err := m.Submit(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}
	submit("h1", ClassHigh)
	submit("h2", ClassHigh)
	submit("h3", ClassHigh)
	submit("h4", ClassHigh)
	submit("n1", ClassNormal)
	submit("n2", ClassNormal)
	submit("l1", ClassLow)
	close(release)

	waitUntil(t, "all jobs to finish", func() bool {
		for _, info := range m.List() {
			if !info.State.Terminal() {
				return false
			}
		}
		return true
	})
	got := strings.Join(f.createdOrder(), " ")
	want := "primer h1 n1 h2 l1 h3 n2 h4"
	if got != want {
		t.Errorf("execution order %q, want %q", got, want)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	f := newFakeRunner()
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		if call <= 2 {
			return fmt.Errorf("%w: slot contention", ErrTransient)
		}
		return nil
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1, MaxRetries: 3})

	info, err := m.Submit(context.Background(), spec("plummer", 5))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, info.ID, StateSucceeded)
	if done.StepsDone != 5 || done.Attempts != 0 {
		t.Errorf("final info %+v: want 5 steps, attempts reset to 0", done)
	}
	if v := m.ins.retries.Value(); v != 2 {
		t.Errorf("retries = %v, want 2", v)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	f := newFakeRunner()
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		return fmt.Errorf("%w: always busy", ErrTransient)
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1, MaxRetries: 2})

	info, err := m.Submit(context.Background(), spec("plummer", 5))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, info.ID, StateFailed)
	if !strings.Contains(done.Error, "transient fault persisted after 2 retries") {
		t.Errorf("error = %q", done.Error)
	}
	if v := m.ins.retries.Value(); v != 2 {
		t.Errorf("retries = %v, want 2", v)
	}
}

func TestPermanentFailure(t *testing.T) {
	f := newFakeRunner()
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		return errors.New("non-finite position")
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1})

	info, err := m.Submit(context.Background(), spec("plummer", 5))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, info.ID, StateFailed)
	if done.Error != "non-finite position" {
		t.Errorf("error = %q", done.Error)
	}
	if v := m.ins.retries.Value(); v != 0 {
		t.Errorf("retries = %v, want 0 (permanent faults must not retry)", v)
	}
}

func TestCancelQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	f := primedRunner(release, started)
	m := newTestManager(t, Config{Runner: f, Workers: 1})

	if _, err := m.Submit(context.Background(), spec("primer", 1)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(context.Background(), spec("victim", 1))
	if err != nil {
		t.Fatal(err)
	}

	info, deleted, err := m.Cancel(context.Background(), queued.ID)
	if err != nil || deleted {
		t.Fatalf("Cancel: info=%+v deleted=%v err=%v", info, deleted, err)
	}
	if info.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", info.State)
	}
	close(release)

	// The cancelled job must never run.
	waitUntil(t, "primer to finish", func() bool {
		infos := m.List()
		return infos[0].State == StateSucceeded
	})
	for _, w := range f.createdOrder() {
		if w == "victim" {
			t.Error("cancelled job was executed")
		}
	}
}

func TestCancelRunning(t *testing.T) {
	f := newFakeRunner()
	started := make(chan struct{})
	var once sync.Once
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		if call == 1 {
			return nil // commit one chunk of progress first
		}
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1})

	s := spec("plummer", 100)
	s.ChunkSteps = 10
	info, err := m.Submit(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := m.Cancel(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, info.ID, StateCancelled)
	if done.StepsDone != 10 {
		t.Errorf("steps_done = %d, want the 10 committed before cancel", done.StepsDone)
	}
	// Partial artifacts stay downloadable.
	var buf bytes.Buffer
	if err := m.WriteSnapshot(info.ID, &buf); err != nil {
		t.Fatalf("WriteSnapshot after cancel: %v", err)
	}
}

func TestCancelTerminalDeletes(t *testing.T) {
	f := newFakeRunner()
	js, err := store.OpenJobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1, Store: js})

	info, err := m.Submit(context.Background(), spec("plummer", 3))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, info.ID, StateSucceeded)

	_, deleted, err := m.Cancel(context.Background(), info.ID)
	if err != nil || !deleted {
		t.Fatalf("Cancel terminal: deleted=%v err=%v", deleted, err)
	}
	if _, err := m.Get(info.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	waitUntil(t, "session and record cleanup", func() bool {
		f.mu.Lock()
		gone := len(f.deleted) == 1 && f.deleted[0] == done.SessionID
		f.mu.Unlock()
		recs, _, err := js.Recover()
		return gone && err == nil && len(recs) == 0
	})
	if _, _, err := m.Cancel(context.Background(), info.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("second cancel: %v", err)
	}
}

func TestArtifactErrors(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	f := primedRunner(release, started)
	m := newTestManager(t, Config{Runner: f, Workers: 1})

	if _, err := m.Submit(context.Background(), spec("primer", 1)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(context.Background(), spec("waiting", 1))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.WriteSnapshot(queued.ID, &buf); !errors.Is(err, ErrNotReady) {
		t.Errorf("snapshot of queued job: %v, want ErrNotReady", err)
	}
	if err := m.WriteTrace("j-404", &buf); !errors.Is(err, ErrNotFound) {
		t.Errorf("trace of unknown job: %v, want ErrNotFound", err)
	}
	close(release)

	waitState(t, m, queued.ID, StateSucceeded)
	buf.Reset()
	if err := m.WriteSnapshot(queued.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "snap:") {
		t.Errorf("snapshot body %q", buf.String())
	}
}

func TestDrainRequeuesAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	js, err := store.OpenJobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeRunner()
	progressed := make(chan struct{})
	var once sync.Once
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		if call == 1 {
			return nil // one committed chunk of progress
		}
		once.Do(func() { close(progressed) })
		<-ctx.Done() // park until drain interrupts the chunk
		return ctx.Err()
	}

	m1, err := NewManager(Config{Runner: f, Workers: 1, Store: js, ChunkSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m1.Submit(context.Background(), spec("plummer", 30))
	if err != nil {
		t.Fatal(err)
	}
	<-progressed

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := m1.ins.requeued.Value(); v != 1 {
		t.Errorf("requeued = %v, want 1", v)
	}
	recs, _, err := js.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recover: %v %+v", err, recs)
	}
	if recs[0].State != string(StateQueued) || recs[0].StepsDone != 10 {
		t.Fatalf("persisted record %+v: want queued at steps_done 10", recs[0])
	}

	// Restart: same store, runner now healthy. The job must resume from
	// the session's recovered position and finish the remaining steps.
	f.stepHook = nil
	m2 := newTestManager(t, Config{Runner: f, Workers: 1, Store: js, ChunkSteps: 10})
	done := waitState(t, m2, info.ID, StateSucceeded)
	if done.StepsDone != 30 {
		t.Errorf("steps_done = %d, want 30", done.StepsDone)
	}
	if got, _ := f.SessionSteps(done.SessionID); got != 30 {
		t.Errorf("session stepped %d total, want 30 (no re-run from zero)", got)
	}
	// Fresh submissions must not collide with the recovered ID space.
	next, err := m2.Submit(context.Background(), spec("plummer", 1))
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "j-2" {
		t.Errorf("next ID %s, want j-2", next.ID)
	}
}

func TestRestartWithLostSessionStartsOver(t *testing.T) {
	dir := t.TempDir()
	js, err := store.OpenJobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the store with a mid-flight record whose session no longer
	// exists (evicted or wiped between runs).
	rec := store.JobRecord{
		ID: "j-1", Class: ClassNormal, State: string(StateRunning),
		Workload: "plummer", N: 16, DT: 1e-3, Steps: 20, ChunkSteps: 10,
		SessionID: "fs-gone", StepsDone: 10, Created: time.Now().UTC(),
	}
	if err := js.Save(rec); err != nil {
		t.Fatal(err)
	}

	f := newFakeRunner()
	m := newTestManager(t, Config{Runner: f, Workers: 1, Store: js})
	done := waitState(t, m, "j-1", StateSucceeded)
	if done.StepsDone != 20 {
		t.Errorf("steps_done = %d, want 20", done.StepsDone)
	}
	if got, _ := f.SessionSteps(done.SessionID); got != 20 {
		t.Errorf("replacement session stepped %d, want the full 20", got)
	}
}

func TestCloseDeadlineBlown(t *testing.T) {
	f := newFakeRunner()
	started := make(chan struct{})
	hang := make(chan struct{})
	var once sync.Once
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		once.Do(func() { close(started) })
		<-hang // ignores ctx: simulates a wedged chunk
		return nil
	}
	m, err := NewManager(Config{Runner: f, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), spec("plummer", 10)); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); err == nil {
		t.Fatal("Close returned nil despite a wedged worker")
	}
	close(hang) // let the goroutine exit
}

func TestSubmitDuringDrain(t *testing.T) {
	f := newFakeRunner()
	m, err := NewManager(Config{Runner: f, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), spec("plummer", 1)); !errors.Is(err, ErrShutdown) {
		t.Errorf("submit during drain: %v, want ErrShutdown", err)
	}
}

func TestRetentionPrunesTerminal(t *testing.T) {
	f := newFakeRunner()
	js, err := store.OpenJobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1, Store: js, MaxRecords: 3})

	var last Info
	for i := 0; i < 3; i++ {
		info, err := m.Submit(context.Background(), spec("plummer", 1))
		if err != nil {
			t.Fatal(err)
		}
		last = waitState(t, m, info.ID, StateSucceeded)
		_ = last
	}
	// The 4th submission must evict the oldest-finished terminal record.
	if _, err := m.Submit(context.Background(), spec("plummer", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("j-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest record not pruned: %v", err)
	}
	waitUntil(t, "pruned record deleted from store", func() bool {
		recs, _, err := js.Recover()
		if err != nil {
			return false
		}
		for _, r := range recs {
			if r.ID == "j-1" {
				return false
			}
		}
		return true
	})
	if v := m.ins.pruned.Value(); v != 1 {
		t.Errorf("pruned = %v, want 1", v)
	}
}

func TestListOrdersNumerically(t *testing.T) {
	f := newFakeRunner()
	js, err := store.OpenJobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"j-2", "j-10", "j-1"} {
		rec := store.JobRecord{
			ID: id, Class: ClassNormal, State: string(StateSucceeded),
			Workload: "plummer", N: 16, DT: 1e-3, Steps: 1, StepsDone: 1,
			Created: time.Now().UTC(), Finished: time.Now().UTC(),
		}
		if err := js.Save(rec); err != nil {
			t.Fatal(err)
		}
	}
	m := newTestManager(t, Config{Runner: f, Store: js})
	var ids []string
	for _, info := range m.List() {
		ids = append(ids, info.ID)
	}
	if strings.Join(ids, ",") != "j-1,j-2,j-10" {
		t.Errorf("list order %v", ids)
	}
	if s := m.Snapshot(); s.Records != 3 || s.Queued != 0 {
		t.Errorf("snapshot %+v", s)
	}
}

// TestReprioritize covers the PATCH surface's manager half: a queued job
// moves class (and runs ahead of lower-priority work), a running job
// refuses with ErrNotQueued, and bad inputs map onto the typed errors.
func TestReprioritize(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	f := primedRunner(release, started)
	m := newTestManager(t, Config{Runner: f, Workers: 1})
	ctx := context.Background()

	primer, err := m.Submit(ctx, spec("primer", 1))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is pinned; everything below stays queued

	low := spec("stays-low", 1)
	low.Class = ClassLow
	qLow, err := m.Submit(ctx, low)
	if err != nil {
		t.Fatal(err)
	}
	promo := spec("promoted", 1)
	promo.Class = ClassLow
	qPromo, err := m.Submit(ctx, promo)
	if err != nil {
		t.Fatal(err)
	}

	info, err := m.Reprioritize(ctx, qPromo.ID, ClassHigh)
	if err != nil {
		t.Fatal(err)
	}
	if info.Class != ClassHigh || info.State != StateQueued {
		t.Fatalf("reprioritized info %+v, want queued high", info)
	}
	// Same-class change is a no-op, not an error.
	if _, err := m.Reprioritize(ctx, qPromo.ID, ClassHigh); err != nil {
		t.Fatalf("same-class reprioritize: %v", err)
	}

	if _, err := m.Reprioritize(ctx, qPromo.ID, "urgent"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown class: err %v, want ErrBadRequest", err)
	}
	if _, err := m.Reprioritize(ctx, "j-999", ClassHigh); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: err %v, want ErrNotFound", err)
	}
	if _, err := m.Reprioritize(ctx, primer.ID, ClassHigh); !errors.Is(err, ErrNotQueued) {
		t.Fatalf("running job: err %v, want ErrNotQueued", err)
	}

	close(release)
	waitState(t, m, qPromo.ID, StateSucceeded)
	waitState(t, m, qLow.ID, StateSucceeded)
	// The promotion was real: the high job's session was created (job
	// started) before the one that stayed low.
	order := f.createdOrder()
	if len(order) != 3 || order[1] != "promoted" || order[2] != "stays-low" {
		t.Fatalf("start order %v, want [primer promoted stays-low]", order)
	}
}

// TestSubmitRequestedID: a submitter (the router tier) may pin the job ID;
// collisions and malformed IDs are rejected synchronously, and a sharded
// manager prefixes its own minted IDs.
func TestSubmitRequestedID(t *testing.T) {
	f := newFakeRunner()
	m := newTestManager(t, Config{Runner: f, Workers: 1, ShardID: "a"})
	ctx := context.Background()

	s := spec("plummer", 1)
	s.ID = "rj-0123456789abcdef"
	info, err := m.Submit(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != s.ID {
		t.Fatalf("submitted under %q, requested %q", info.ID, s.ID)
	}
	waitState(t, m, s.ID, StateSucceeded)

	if _, err := m.Submit(ctx, s); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("duplicate requested ID: err %v, want ErrBadRequest", err)
	}
	bad := spec("plummer", 1)
	bad.ID = "no/slashes allowed"
	if _, err := m.Submit(ctx, bad); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed requested ID: err %v, want ErrBadRequest", err)
	}

	minted, err := m.Submit(ctx, spec("plummer", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(minted.ID, "a-j-") {
		t.Fatalf("sharded manager minted %q, want a-j-<n>", minted.ID)
	}
}

func TestChunkTimeoutWatchdogRetriesTransiently(t *testing.T) {
	f := newFakeRunner()
	// The first chunk hangs until its context dies — the wedged-session
	// case the watchdog exists for. It must classify as transient (the
	// job neither cancelled nor the pool drained), so the retry loop
	// backs off and the second attempt completes the job.
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		if call == 1 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	m := newTestManager(t, Config{Runner: f, Workers: 1, ChunkTimeout: 25 * time.Millisecond})

	info, err := m.Submit(context.Background(), spec("plummer", 10))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, info.ID, StateSucceeded)
	if done.StepsDone != 10 {
		t.Errorf("final info %+v: want 10 steps", done)
	}
	if v := m.ins.retries.Value(); v != 1 {
		t.Errorf("retries = %v, want 1 (the watchdog-abandoned chunk)", v)
	}
}

func TestChunkTimeoutDoesNotMisclassifyCancel(t *testing.T) {
	f := newFakeRunner()
	stepping := make(chan struct{}, 1)
	f.stepHook = func(ctx context.Context, call int, sid string, n int) error {
		select {
		case stepping <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	}
	// Watchdog far in the future: the context dying means cancellation,
	// and the job must land in cancelled, not a transient retry.
	m := newTestManager(t, Config{Runner: f, Workers: 1, ChunkTimeout: time.Hour})

	info, err := m.Submit(context.Background(), spec("plummer", 10))
	if err != nil {
		t.Fatal(err)
	}
	<-stepping
	if _, _, err := m.Cancel(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, info.ID, StateCancelled)
	if v := m.ins.retries.Value(); v != 0 {
		t.Errorf("retries = %v, want 0 for a cancel", v)
	}
}
