// Package integrator implements the Störmer-Verlet time integration the
// paper uses (its reference [12]) in the kick-drift-kick (velocity Verlet /
// leapfrog) form, plus a plain explicit Euler integrator kept as a
// contrasting baseline for the energy-conservation tests: Verlet is
// symplectic and keeps the energy error bounded; Euler drifts secularly.
//
// The integration is split into half-kicks and a drift so that the force
// solver can be invoked between them, matching the five-step loop of
// Algorithm 2: per timestep the simulation performs
//
//	KickHalf(dt)     // v += a·dt/2      (uses last step's accelerations)
//	Drift(dt)        // x += v·dt
//	<rebuild tree, CALCULATEFORCE>       // refresh a at the new positions
//	KickHalf(dt)     // v += a·dt/2
//
// which is algebraically the classic Störmer-Verlet update.
package integrator

import (
	"nbody/internal/body"
	"nbody/internal/par"
)

// KickHalf advances velocities by half a timestep with the current
// accelerations: v ← v + a·dt/2. Iterations are independent (par_unseq).
func KickHalf(r *par.Runtime, pol par.Policy, s *body.System, dt float64) {
	h := dt / 2
	velX, velY, velZ := s.VelX, s.VelY, s.VelZ
	accX, accY, accZ := s.AccX, s.AccY, s.AccZ
	r.ForGrain(pol, s.N(), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			velX[i] += h * accX[i]
			velY[i] += h * accY[i]
			velZ[i] += h * accZ[i]
		}
	})
}

// Drift advances positions by a full timestep with the current velocities:
// x ← x + v·dt.
func Drift(r *par.Runtime, pol par.Policy, s *body.System, dt float64) {
	posX, posY, posZ := s.PosX, s.PosY, s.PosZ
	velX, velY, velZ := s.VelX, s.VelY, s.VelZ
	r.ForGrain(pol, s.N(), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			posX[i] += dt * velX[i]
			posY[i] += dt * velY[i]
			posZ[i] += dt * velZ[i]
		}
	})
}

// EulerStep advances positions and velocities with a single explicit Euler
// update from the current accelerations: x ← x + v·dt, then v ← v + a·dt.
// First-order and non-symplectic; provided as the contrast baseline.
func EulerStep(r *par.Runtime, pol par.Policy, s *body.System, dt float64) {
	posX, posY, posZ := s.PosX, s.PosY, s.PosZ
	velX, velY, velZ := s.VelX, s.VelY, s.VelZ
	accX, accY, accZ := s.AccX, s.AccY, s.AccZ
	r.ForGrain(pol, s.N(), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			posX[i] += dt * velX[i]
			posY[i] += dt * velY[i]
			posZ[i] += dt * velZ[i]
			velX[i] += dt * accX[i]
			velY[i] += dt * accY[i]
			velZ[i] += dt * accZ[i]
		}
	})
}

// ReverseVelocities negates every velocity. Verlet integration is
// time-reversible: integrating n steps, reversing, and integrating n more
// steps returns (up to floating-point rounding) to the initial state — a
// property the tests exploit.
func ReverseVelocities(r *par.Runtime, pol par.Policy, s *body.System) {
	velX, velY, velZ := s.VelX, s.VelY, s.VelZ
	r.ForGrain(pol, s.N(), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			velX[i] = -velX[i]
			velY[i] = -velY[i]
			velZ[i] = -velZ[i]
		}
	})
}
