package integrator

import (
	"math"
	"testing"

	"nbody/internal/allpairs"
	"nbody/internal/body"
	"nbody/internal/grav"
	"nbody/internal/par"
	"nbody/internal/vec"
)

var rt = par.NewRuntime(0, par.Dynamic)

// verletStep performs one KDK step with the exact all-pairs force.
func verletStep(s *body.System, p grav.Params, dt float64) {
	KickHalf(rt, par.ParUnseq, s, dt)
	Drift(rt, par.ParUnseq, s, dt)
	allpairs.AllPairs(rt, par.ParUnseq, s, p)
	KickHalf(rt, par.ParUnseq, s, dt)
}

// twoBodyCircular sets up a circular two-body orbit of unit masses at
// separation 2 about the origin: v = sqrt(G·M_total/(4r)) … derived so that
// the relative orbit is circular with zero softening.
func twoBodyCircular() (*body.System, grav.Params) {
	p := grav.Params{G: 1, Eps: 0, Theta: 0}
	s := body.NewSystem(2)
	// Each body circles the COM at radius 1; a = G·m/(2r)² = 1/4 must
	// equal v²/r ⇒ v = 1/2.
	s.Set(0, 1, vec.New(-1, 0, 0), vec.New(0, -0.5, 0))
	s.Set(1, 1, vec.New(1, 0, 0), vec.New(0, 0.5, 0))
	return s, p
}

func totalEnergy(s *body.System, p grav.Params) float64 {
	return s.KineticEnergy() + allpairs.PotentialEnergy(rt, par.Par, s, p)
}

func TestKickDriftBasic(t *testing.T) {
	s := body.NewSystem(1)
	s.Set(0, 1, vec.New(1, 0, 0), vec.New(0, 2, 0))
	s.SetAcc(0, vec.New(0, 0, 4))

	KickHalf(rt, par.ParUnseq, s, 0.5) // v += a·0.25 → (0,2,1)
	if s.Vel(0) != vec.New(0, 2, 1) {
		t.Errorf("after half kick: %v", s.Vel(0))
	}
	Drift(rt, par.ParUnseq, s, 0.5) // x += v·0.5 → (1,1,0.5)
	if s.Pos(0) != vec.New(1, 1, 0.5) {
		t.Errorf("after drift: %v", s.Pos(0))
	}
}

func TestEulerStepBasic(t *testing.T) {
	s := body.NewSystem(1)
	s.Set(0, 1, vec.New(0, 0, 0), vec.New(1, 0, 0))
	s.SetAcc(0, vec.New(0, 1, 0))
	EulerStep(rt, par.ParUnseq, s, 2)
	if s.Pos(0) != vec.New(2, 0, 0) {
		t.Errorf("pos = %v", s.Pos(0))
	}
	if s.Vel(0) != vec.New(1, 2, 0) {
		t.Errorf("vel = %v", s.Vel(0))
	}
}

func TestReverseVelocities(t *testing.T) {
	s := body.NewSystem(2)
	s.SetVel(0, vec.New(1, -2, 3))
	s.SetVel(1, vec.New(-4, 5, -6))
	ReverseVelocities(rt, par.ParUnseq, s)
	if s.Vel(0) != vec.New(-1, 2, -3) || s.Vel(1) != vec.New(4, -5, 6) {
		t.Errorf("reversed: %v %v", s.Vel(0), s.Vel(1))
	}
}

func TestCircularOrbitStaysCircular(t *testing.T) {
	s, p := twoBodyCircular()
	allpairs.AllPairs(rt, par.ParUnseq, s, p)

	// Orbit period for the relative orbit: T = 2π·r_rel/v_rel = 2π·2/1.
	dt := 0.005
	steps := int(4 * math.Pi / dt) // one full period
	for k := 0; k < steps; k++ {
		verletStep(s, p, dt)
	}
	// Radii must remain ~1 and the bodies must return near their start.
	for i := 0; i < 2; i++ {
		r := s.Pos(i).Norm()
		if math.Abs(r-1) > 1e-3 {
			t.Errorf("body %d radius %v after one period", i, r)
		}
	}
	if d := s.Pos(0).Dist(vec.New(-1, 0, 0)); d > 5e-3 {
		t.Errorf("body 0 returned %v from start", d)
	}
}

func TestVerletEnergyBounded(t *testing.T) {
	s, p := twoBodyCircular()
	allpairs.AllPairs(rt, par.ParUnseq, s, p)
	e0 := totalEnergy(s, p)

	dt := 0.01
	worst := 0.0
	for k := 0; k < 5000; k++ {
		verletStep(s, p, dt)
		if k%100 == 0 {
			drift := math.Abs(totalEnergy(s, p)-e0) / math.Abs(e0)
			if drift > worst {
				worst = drift
			}
		}
	}
	if worst > 1e-3 {
		t.Errorf("Verlet energy drift %v over 5000 steps", worst)
	}
}

func TestEulerDriftsMoreThanVerlet(t *testing.T) {
	// The symplectic property in action: after many steps of the same
	// orbit, Euler's energy error must dwarf Verlet's.
	dt := 0.01
	steps := 2000

	sv, p := twoBodyCircular()
	allpairs.AllPairs(rt, par.ParUnseq, sv, p)
	e0 := totalEnergy(sv, p)
	for k := 0; k < steps; k++ {
		verletStep(sv, p, dt)
	}
	verletErr := math.Abs(totalEnergy(sv, p) - e0)

	se, _ := twoBodyCircular()
	allpairs.AllPairs(rt, par.ParUnseq, se, p)
	for k := 0; k < steps; k++ {
		EulerStep(rt, par.ParUnseq, se, dt)
		allpairs.AllPairs(rt, par.ParUnseq, se, p)
	}
	eulerErr := math.Abs(totalEnergy(se, p) - e0)

	if eulerErr < 20*verletErr {
		t.Errorf("Euler error %v not ≫ Verlet error %v", eulerErr, verletErr)
	}
}

func TestTimeReversibility(t *testing.T) {
	// Integrate a small chaotic-ish system forward, reverse velocities,
	// integrate the same number of steps: Verlet must come back to the
	// start to near machine precision.
	p := grav.Params{G: 1, Eps: 0.05, Theta: 0}
	s := body.NewSystem(4)
	s.Set(0, 1.0, vec.New(-1, 0, 0), vec.New(0, -0.3, 0))
	s.Set(1, 1.5, vec.New(1, 0, 0), vec.New(0, 0.3, 0))
	s.Set(2, 0.5, vec.New(0, 2, 0), vec.New(0.4, 0, 0.1))
	s.Set(3, 0.8, vec.New(0, -2, 1), vec.New(-0.4, 0, -0.1))
	start := s.Clone()

	allpairs.AllPairs(rt, par.ParUnseq, s, p)
	const steps = 500
	dt := 0.01
	for k := 0; k < steps; k++ {
		verletStep(s, p, dt)
	}
	ReverseVelocities(rt, par.ParUnseq, s)
	allpairs.AllPairs(rt, par.ParUnseq, s, p)
	for k := 0; k < steps; k++ {
		verletStep(s, p, dt)
	}

	for i := 0; i < s.N(); i++ {
		if d := s.Pos(i).Dist(start.Pos(i)); d > 1e-9 {
			t.Errorf("body %d returned %g from start", i, d)
		}
	}
}

func TestMomentumConservedByIntegration(t *testing.T) {
	p := grav.Params{G: 1, Eps: 0.01, Theta: 0}
	s := body.NewSystem(3)
	s.Set(0, 1, vec.New(0, 0, 0), vec.New(0.1, 0, 0))
	s.Set(1, 2, vec.New(1, 0.5, 0), vec.New(-0.05, 0.1, 0))
	s.Set(2, 3, vec.New(-1, 1, 0.5), vec.New(0, -0.1, 0.05))
	p0 := s.Momentum()
	allpairs.AllPairs(rt, par.ParUnseq, s, p)
	for k := 0; k < 1000; k++ {
		verletStep(s, p, 0.01)
	}
	if d := s.Momentum().Sub(p0).Norm(); d > 1e-10 {
		t.Errorf("momentum drift %g", d)
	}
}

// Verlet is second-order: halving dt must reduce the fixed-horizon position
// error by ~4x. The horizon T is an exact multiple of every dt used so the
// endpoint times coincide; the reference trajectory uses a 16x finer step.
func TestVerletSecondOrderConvergence(t *testing.T) {
	const T = 8.0
	posAt := func(dt float64) vec.V3 {
		s, p := twoBodyCircular()
		allpairs.AllPairs(rt, par.ParUnseq, s, p)
		steps := int(math.Round(T / dt))
		for k := 0; k < steps; k++ {
			verletStep(s, p, dt)
		}
		return s.Pos(0)
	}
	ref := posAt(0.00125)
	e1 := posAt(0.02).Dist(ref)
	e2 := posAt(0.01).Dist(ref)
	ratio := e1 / e2
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("halving dt changed error by %vx, want ~4x (e1=%g e2=%g)", ratio, e1, e2)
	}
}
