// Package grav holds the pairwise gravitational interaction kernel shared by
// every force solver in the repository (All-Pairs, Concurrent Octree,
// Hilbert BVH), plus the simulation parameters that govern it.
//
// The force law is Equation 1 of the paper with Plummer softening: the
// acceleration induced on a body at x by a point mass m at y is
//
//	a = G · m · (y - x) / (|y - x|² + ε²)^(3/2)
//
// Softening (ε > 0) removes the singularity when two bodies coincide, which
// any finite-timestep integration of a collisional workload needs; ε = 0
// recovers the exact Newtonian law.
package grav

import (
	"errors"
	"fmt"
	"math"
)

// Params bundles the physical and accuracy parameters of a force
// calculation.
type Params struct {
	// G is the gravitational constant in simulation units.
	G float64
	// Eps is the Plummer softening length ε.
	Eps float64
	// Theta is the Barnes-Hut opening threshold: a tree node of size s at
	// distance d is approximated by its multipole when s/d < Theta.
	// Theta = 0 forces exact (all-pairs-equivalent) evaluation.
	Theta float64
}

// DefaultParams returns the parameters used by the paper's evaluation:
// θ = 0.5, G = 1 (dimensionless simulation units), and a small softening
// suitable for the galaxy workload.
func DefaultParams() Params {
	return Params{G: 1, Eps: 1e-3, Theta: 0.5}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if math.IsNaN(p.G) || math.IsInf(p.G, 0) {
		return fmt.Errorf("grav: invalid G %v", p.G)
	}
	if p.Eps < 0 || math.IsNaN(p.Eps) || math.IsInf(p.Eps, 0) {
		return fmt.Errorf("grav: invalid softening %v", p.Eps)
	}
	if p.Theta < 0 || math.IsNaN(p.Theta) || math.IsInf(p.Theta, 0) {
		return errors.New("grav: theta must be finite and non-negative")
	}
	return nil
}

// Eps2 returns ε².
func (p Params) Eps2() float64 { return p.Eps * p.Eps }

// Accumulate adds to (ax, ay, az) the acceleration a point mass m at offset
// (dx, dy, dz) from the target body induces, excluding the factor G, which
// callers hoist out of their inner loops:
//
//	Δa = m · d / (|d|² + eps2)^(3/2)
//
// A zero offset with zero softening contributes nothing (the self-
// interaction convention, rather than producing NaN).
func Accumulate(dx, dy, dz, m, eps2 float64, ax, ay, az *float64) {
	r2 := dx*dx + dy*dy + dz*dz + eps2
	if r2 == 0 {
		return
	}
	inv := 1 / math.Sqrt(r2)
	f := m * inv * inv * inv
	*ax += f * dx
	*ay += f * dy
	*az += f * dz
}

// PairPotential returns the gravitational potential energy of two point
// masses, -G·m₁·m₂/√(r² + ε²), using the softened distance so that energy
// diagnostics are consistent with the softened force law.
func PairPotential(g, m1, m2, r2, eps2 float64) float64 {
	d := math.Sqrt(r2 + eps2)
	if d == 0 {
		return 0
	}
	return -g * m1 * m2 / d
}
