package grav

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.G != 1 || p.Theta != 0.5 || p.Eps <= 0 {
		t.Errorf("DefaultParams = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if p.Eps2() != p.Eps*p.Eps {
		t.Errorf("Eps2 = %v", p.Eps2())
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{G: math.NaN(), Eps: 0, Theta: 0},
		{G: math.Inf(1), Eps: 0, Theta: 0},
		{G: 1, Eps: -0.1, Theta: 0},
		{G: 1, Eps: math.NaN(), Theta: 0},
		{G: 1, Eps: 0, Theta: -1},
		{G: 1, Eps: 0, Theta: math.Inf(1)},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestAccumulateInverseSquare(t *testing.T) {
	// Unit mass at distance 2 along x, no softening: |Δa| = 1/4 toward it.
	var ax, ay, az float64
	Accumulate(2, 0, 0, 1, 0, &ax, &ay, &az)
	if math.Abs(ax-0.25) > 1e-15 || ay != 0 || az != 0 {
		t.Errorf("Accumulate = (%v, %v, %v)", ax, ay, az)
	}
}

func TestAccumulateZeroOffset(t *testing.T) {
	var ax, ay, az float64
	Accumulate(0, 0, 0, 5, 0, &ax, &ay, &az) // self-interaction, ε = 0
	if ax != 0 || ay != 0 || az != 0 {
		t.Errorf("self-interaction produced (%v, %v, %v)", ax, ay, az)
	}
	Accumulate(0, 0, 0, 5, 1e-6, &ax, &ay, &az) // softened: f·d = 0 anyway
	if ax != 0 || ay != 0 || az != 0 {
		t.Errorf("softened self-interaction produced (%v, %v, %v)", ax, ay, az)
	}
}

func TestAccumulateSoftening(t *testing.T) {
	// With softening the force at distance d is m·d/(d²+ε²)^(3/2),
	// strictly below the unsoftened value.
	var hard, soft float64
	var ay, az float64
	Accumulate(1, 0, 0, 1, 0, &hard, &ay, &az)
	Accumulate(1, 0, 0, 1, 0.5, &soft, &ay, &az)
	if soft >= hard {
		t.Errorf("softened %v not below unsoftened %v", soft, hard)
	}
	want := 1 / math.Pow(1.5, 1.5)
	if math.Abs(soft-want) > 1e-15 {
		t.Errorf("softened force %v, want %v", soft, want)
	}
}

func TestPairPotential(t *testing.T) {
	if got := PairPotential(2, 3, 4, 25, 0); got != -2*3*4/5.0 {
		t.Errorf("PairPotential = %v", got)
	}
	if got := PairPotential(1, 1, 1, 0, 0); got != 0 {
		t.Errorf("coincident PairPotential = %v", got)
	}
	// Softened: denominator √(r²+ε²).
	if got := PairPotential(1, 1, 1, 9, 16); got != -0.2 {
		t.Errorf("softened PairPotential = %v", got)
	}
}

// Property: accumulated acceleration points toward the source and its
// magnitude matches m/(r²+ε²)^{3/2}·r.
func TestPropAccumulateDirection(t *testing.T) {
	f := func(dxr, dyr, dzr int16, mr uint8) bool {
		dx := float64(dxr) / 100
		dy := float64(dyr) / 100
		dz := float64(dzr) / 100
		m := float64(mr)/10 + 0.1
		r2 := dx*dx + dy*dy + dz*dz
		if r2 == 0 {
			return true
		}
		var ax, ay, az float64
		Accumulate(dx, dy, dz, m, 0, &ax, &ay, &az)
		// Parallel to (dx,dy,dz) with positive scale.
		dot := ax*dx + ay*dy + az*dz
		if dot <= 0 {
			return false
		}
		mag := math.Sqrt(ax*ax + ay*ay + az*az)
		want := m / r2
		return math.Abs(mag-want) < 1e-9*want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
