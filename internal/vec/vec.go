// Package vec provides small fixed-size vector algebra for double-precision
// 3D simulation code. V3 is a value type; all operations return new values
// and are free of heap allocation so they inline well in hot loops.
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component double-precision vector.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Splat returns the vector (s, s, s).
func Splat(s float64) V3 { return V3{s, s, s} }

// Zero is the zero vector.
var Zero = V3{}

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Mul returns the component-wise product a * b.
func (a V3) Mul(b V3) V3 { return V3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Div returns the component-wise quotient a / b.
func (a V3) Div(b V3) V3 { return V3{a.X / b.X, a.Y / b.Y, a.Z / b.Z} }

// Scale returns a scaled by s.
func (a V3) Scale(s float64) V3 { return V3{a.X * s, a.Y * s, a.Z * s} }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a.X, -a.Y, -a.Z} }

// Dot returns the inner product a · b.
func (a V3) Dot(b V3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a × b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns the squared Euclidean norm |a|².
func (a V3) Norm2() float64 { return a.Dot(a) }

// Norm returns the Euclidean norm |a|.
func (a V3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Dist returns the Euclidean distance |a - b|.
func (a V3) Dist(b V3) float64 { return a.Sub(b).Norm() }

// Dist2 returns the squared Euclidean distance |a - b|².
func (a V3) Dist2(b V3) float64 { return a.Sub(b).Norm2() }

// Normalized returns a / |a|. The zero vector is returned unchanged.
func (a V3) Normalized() V3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Min returns the component-wise minimum of a and b.
func (a V3) Min(b V3) V3 {
	return V3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a V3) Max(b V3) V3 {
	return V3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// MaxComponent returns the largest of the three components.
func (a V3) MaxComponent() float64 { return math.Max(a.X, math.Max(a.Y, a.Z)) }

// MinComponent returns the smallest of the three components.
func (a V3) MinComponent() float64 { return math.Min(a.X, math.Min(a.Y, a.Z)) }

// Abs returns the component-wise absolute value.
func (a V3) Abs() V3 { return V3{math.Abs(a.X), math.Abs(a.Y), math.Abs(a.Z)} }

// IsFinite reports whether every component is finite (neither NaN nor ±Inf).
func (a V3) IsFinite() bool {
	return isFinite(a.X) && isFinite(a.Y) && isFinite(a.Z)
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Lerp returns the linear interpolation a + t(b-a).
func (a V3) Lerp(b V3, t float64) V3 { return a.Add(b.Sub(a).Scale(t)) }

// MulAdd returns a + b*s computed with fused multiply-adds per component.
func (a V3) MulAdd(b V3, s float64) V3 {
	return V3{
		math.FMA(b.X, s, a.X),
		math.FMA(b.Y, s, a.Y),
		math.FMA(b.Z, s, a.Z),
	}
}

// Component returns component i (0 → X, 1 → Y, 2 → Z). It panics for other i.
func (a V3) Component(i int) float64 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("vec: component index %d out of range", i))
}

// WithComponent returns a copy of a with component i replaced by v.
func (a V3) WithComponent(i int, v float64) V3 {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic(fmt.Sprintf("vec: component index %d out of range", i))
	}
	return a
}

// String implements fmt.Stringer.
func (a V3) String() string { return fmt.Sprintf("(%g, %g, %g)", a.X, a.Y, a.Z) }

// ApproxEqual reports whether a and b differ by at most tol in every
// component.
func (a V3) ApproxEqual(b V3, tol float64) bool {
	d := a.Sub(b).Abs()
	return d.X <= tol && d.Y <= tol && d.Z <= tol
}
