package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicAlgebra(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)

	if got := a.Add(b); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != New(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != New(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != New(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDiv(t *testing.T) {
	a := New(8, 6, 4)
	b := New(2, 3, 4)
	if got := a.Div(b); got != New(4, 2, 1) {
		t.Errorf("Div = %v", got)
	}
}

func TestCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x × y = %v, want %v", got, z)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y × z = %v, want %v", got, x)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z × x = %v, want %v", got, y)
	}
}

func TestNorms(t *testing.T) {
	a := New(3, 4, 0)
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := a.Dist(New(3, 4, 12)); got != 12 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Dist2(New(3, 4, 12)); got != 144 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestNormalized(t *testing.T) {
	a := New(0, 3, 4)
	n := a.Normalized()
	if math.Abs(n.Norm()-1) > 1e-15 {
		t.Errorf("normalized norm = %v", n.Norm())
	}
	if Zero.Normalized() != Zero {
		t.Errorf("Zero.Normalized() = %v", Zero.Normalized())
	}
}

func TestMinMax(t *testing.T) {
	a := New(1, 5, 3)
	b := New(2, 4, 3)
	if got := a.Min(b); got != New(1, 4, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(2, 5, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := a.MaxComponent(); got != 5 {
		t.Errorf("MaxComponent = %v", got)
	}
	if got := a.MinComponent(); got != 1 {
		t.Errorf("MinComponent = %v", got)
	}
}

func TestAbs(t *testing.T) {
	if got := New(-1, 2, -3).Abs(); got != New(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for i := 0; i < 3; i++ {
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			v := New(1, 1, 1).WithComponent(i, bad)
			if v.IsFinite() {
				t.Errorf("IsFinite(%v) = true", v)
			}
		}
	}
}

func TestLerp(t *testing.T) {
	a := New(0, 0, 0)
	b := New(10, 20, 30)
	if got := a.Lerp(b, 0.5); got != New(5, 10, 15) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestComponentAccess(t *testing.T) {
	a := New(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := a.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := a.WithComponent(1, -1); got != New(7, -1, 9) {
		t.Errorf("WithComponent = %v", got)
	}
}

func TestComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Component(3) did not panic")
		}
	}()
	New(1, 2, 3).Component(3)
}

func TestWithComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithComponent(-1) did not panic")
		}
	}()
	New(1, 2, 3).WithComponent(-1, 0)
}

func TestString(t *testing.T) {
	if got := New(1, 2.5, -3).String(); got != "(1, 2.5, -3)" {
		t.Errorf("String = %q", got)
	}
}

func TestMulAdd(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, 5, 6)
	got := a.MulAdd(b, 2)
	want := New(9, 12, 15)
	if !got.ApproxEqual(want, 1e-15) {
		t.Errorf("MulAdd = %v, want %v", got, want)
	}
}

func TestApproxEqual(t *testing.T) {
	a := New(1, 2, 3)
	if !a.ApproxEqual(New(1+1e-12, 2, 3), 1e-9) {
		t.Error("ApproxEqual false for close vectors")
	}
	if a.ApproxEqual(New(1.1, 2, 3), 1e-9) {
		t.Error("ApproxEqual true for distant vectors")
	}
}

// Property: dot product with self equals squared norm, and the
// Cauchy-Schwarz inequality holds.
func TestPropDotProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := clampV(New(ax, ay, az))
		b := clampV(New(bx, by, bz))
		if math.Abs(a.Dot(a)-a.Norm2()) > 1e-9*(1+a.Norm2()) {
			return false
		}
		lhs := math.Abs(a.Dot(b))
		rhs := a.Norm() * b.Norm()
		return lhs <= rhs*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross product is orthogonal to both operands.
func TestPropCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := clampV(New(ax, ay, az))
		b := clampV(New(bx, by, bz))
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		tol := 1e-9 * (1 + scale*scale)
		return math.Abs(c.Dot(a)) <= tol && math.Abs(c.Dot(b)) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub are inverses; Min/Max bracket both inputs.
func TestPropAddSubMinMax(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := clampV(New(ax, ay, az))
		b := clampV(New(bx, by, bz))
		if d := a.Add(b).Sub(b).Sub(a).Abs().MaxComponent(); d > 1e-6*(1+a.Abs().MaxComponent()+b.Abs().MaxComponent()) {
			return false
		}
		lo, hi := a.Min(b), a.Max(b)
		for i := 0; i < 3; i++ {
			if lo.Component(i) > a.Component(i) || lo.Component(i) > b.Component(i) {
				return false
			}
			if hi.Component(i) < a.Component(i) || hi.Component(i) < b.Component(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampV maps arbitrary float64 inputs (which may be NaN/Inf from
// testing/quick) into a sane finite range so algebraic identities are
// numerically checkable.
func clampV(a V3) V3 {
	c := func(f float64) float64 {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 1
		}
		return math.Mod(f, 1e6)
	}
	return New(c(a.X), c(a.Y), c(a.Z))
}
