// Package metrics provides the timing, statistics and table-formatting
// utilities the benchmark harness uses to report results in the shape of
// the paper's figures: per-phase breakdowns (Figure 8), throughputs in
// bodies·steps/second (Figures 5-7, 9) and simple aggregate statistics over
// repeated runs.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Phase identifies one step of the Barnes-Hut time integration loop
// (Algorithm 2 / Algorithm 6 of the paper).
type Phase int

const (
	PhaseBoundingBox Phase = iota
	PhaseSort              // BVH only
	PhaseBuild
	PhaseMultipoles // octree only (the BVH fuses this into Build)
	PhaseRefit      // tree-reuse steps: in-place bounds/moments refresh
	PhaseForce
	PhaseUpdate
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseBoundingBox:
		return "bbox"
	case PhaseSort:
		return "sort"
	case PhaseBuild:
		return "build"
	case PhaseMultipoles:
		return "multipoles"
	case PhaseRefit:
		return "refit"
	case PhaseForce:
		return "force"
	case PhaseUpdate:
		return "update"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Phases lists all phases in execution order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Breakdown accumulates wall time per phase across steps.
type Breakdown struct {
	elapsed [numPhases]time.Duration
	steps   int
}

// Add records d spent in phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) { b.elapsed[p] += d }

// Time runs f and records its duration under phase p.
func (b *Breakdown) Time(p Phase, f func()) {
	start := time.Now()
	f()
	b.Add(p, time.Since(start))
}

// AddStep increments the step counter.
func (b *Breakdown) AddStep() { b.steps++ }

// Steps returns the number of recorded steps.
func (b *Breakdown) Steps() int { return b.steps }

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { *b = Breakdown{} }

// Elapsed returns the accumulated time of phase p.
func (b *Breakdown) Elapsed(p Phase) time.Duration { return b.elapsed[p] }

// Total returns the accumulated time across all phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.elapsed {
		t += d
	}
	return t
}

// Fraction returns phase p's share of the total (0 when nothing was
// recorded).
func (b *Breakdown) Fraction(p Phase) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.elapsed[p]) / float64(total)
}

// FractionExcludingForce returns phase p's share of the non-force time,
// the quantity plotted in the paper's Figure 8 ("the remaining execution
// time is spent in CALCULATEFORCE, not shown").
func (b *Breakdown) FractionExcludingForce(p Phase) float64 {
	if p == PhaseForce {
		return 0
	}
	total := b.Total() - b.elapsed[PhaseForce]
	if total == 0 {
		return 0
	}
	return float64(b.elapsed[p]) / float64(total)
}

// String implements fmt.Stringer with one line per non-zero phase.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for _, p := range Phases() {
		if b.elapsed[p] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-11s %12v  %5.1f%%\n", p, b.elapsed[p].Round(time.Microsecond), 100*b.Fraction(p))
	}
	fmt.Fprintf(&sb, "%-11s %12v", "total", b.Total().Round(time.Microsecond))
	return sb.String()
}

// Throughput converts a measured duration into the paper's throughput
// metric: bodies·steps per second.
func Throughput(bodies, steps int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bodies) * float64(steps) / elapsed.Seconds()
}

// Summary holds simple order statistics of repeated measurements.
type Summary struct {
	N                int
	Min, Max, Mean   float64
	Median, StdDev   float64
	CoefOfVar        float64 // StdDev/Mean (0 when Mean == 0)
	p5Val, p95Val    float64
	sortedCopyCached []float64
}

// Summarize computes order statistics over xs (which it does not modify).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.sortedCopyCached = sorted
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := v - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(sorted)-1))
	}
	if s.Mean != 0 {
		s.CoefOfVar = s.StdDev / math.Abs(s.Mean)
	}
	s.Median = percentileSorted(sorted, 0.5)
	s.p5Val = percentileSorted(sorted, 0.05)
	s.p95Val = percentileSorted(sorted, 0.95)
	return s
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (s Summary) Percentile(q float64) float64 {
	if len(s.sortedCopyCached) == 0 {
		return 0
	}
	return percentileSorted(s.sortedCopyCached, q)
}

func percentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a minimal fixed-width text table writer for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders measurement values compactly: scientific notation for
// very large/small magnitudes, fixed otherwise.
func formatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// RenderCSV writes the table as CSV to w (for post-processing/plotting).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSV := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeCSV(t.header)
	for _, row := range t.rows {
		writeCSV(row)
	}
}
