package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseBoundingBox: "bbox",
		PhaseSort:        "sort",
		PhaseBuild:       "build",
		PhaseMultipoles:  "multipoles",
		PhaseRefit:       "refit",
		PhaseForce:       "force",
		PhaseUpdate:      "update",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%v != %q", p, w)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase prints empty")
	}
	if len(Phases()) != 7 {
		t.Errorf("Phases() = %v", Phases())
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(PhaseForce, 3*time.Second)
	b.Add(PhaseBuild, time.Second)
	b.AddStep()
	b.AddStep()

	if b.Total() != 4*time.Second {
		t.Errorf("Total = %v", b.Total())
	}
	if b.Steps() != 2 {
		t.Errorf("Steps = %d", b.Steps())
	}
	if got := b.Fraction(PhaseForce); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Fraction(force) = %v", got)
	}
	if got := b.FractionExcludingForce(PhaseBuild); got != 1 {
		t.Errorf("FractionExcludingForce(build) = %v", got)
	}
	if got := b.FractionExcludingForce(PhaseForce); got != 0 {
		t.Errorf("FractionExcludingForce(force) = %v", got)
	}
	if !strings.Contains(b.String(), "force") {
		t.Errorf("String missing force: %q", b.String())
	}

	b.Reset()
	if b.Total() != 0 || b.Steps() != 0 {
		t.Error("Reset incomplete")
	}
	if b.Fraction(PhaseForce) != 0 || b.FractionExcludingForce(PhaseBuild) != 0 {
		t.Error("fractions of empty breakdown not zero")
	}
}

func TestBreakdownTime(t *testing.T) {
	var b Breakdown
	b.Time(PhaseUpdate, func() { time.Sleep(time.Millisecond) })
	if b.Elapsed(PhaseUpdate) < time.Millisecond {
		t.Errorf("Time recorded %v", b.Elapsed(PhaseUpdate))
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, 10, time.Second); got != 10000 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Throughput(1000, 10, 0); got != 0 {
		t.Errorf("Throughput(0s) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if math.Abs(s.CoefOfVar-s.StdDev/3) > 1e-12 {
		t.Errorf("CoefOfVar = %v", s.CoefOfVar)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(1); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(0.5); got != 3 {
		t.Errorf("P50 = %v", got)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Percentile(0.5) != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("beta", 1e9)
	tb.AddRow("gamma", 0.0)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"name", "alpha", "3.142", "1.000e+09", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", 2.0)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "\"x,y\"") {
		t.Errorf("CSV quoting failed:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}
