package kdtree

import "container/heap"

// The paper motivates its tree structures as "transferable to other domains
// and algorithms"; this file makes that concrete with the two classic
// spatial queries every simulation codebase eventually needs — fixed-radius
// neighbour search (SPH-style neighbour lists, collision candidate pruning)
// and k-nearest-neighbour search — both answered from the same kd-tree the
// force solver builds, with no extra construction cost.

// RangeQuery appends to out the indices (in the tree's permuted body order)
// of all bodies within radius of (x, y, z), and returns the extended slice.
// The traversal prunes subtrees whose bounding box lies farther than
// radius. Bodies exactly at distance radius are included.
func (t *Tree) RangeQuery(x, y, z, radius float64, out []int32) []int32 {
	if t.n == 0 || radius < 0 {
		return out
	}
	r2 := radius * radius
	var walk func(node int)
	walk = func(node int) {
		if t.lo[node] >= t.hi[node] || t.boxDist2(node, x, y, z) > r2 {
			return
		}
		if t.isLeafNode(node) {
			for b := t.lo[node]; b < t.hi[node]; b++ {
				dx := t.px(b) - x
				dy := t.py(b) - y
				dz := t.pz(b) - z
				if dx*dx+dy*dy+dz*dz <= r2 {
					out = append(out, b)
				}
			}
			return
		}
		walk(2 * node)
		walk(2*node + 1)
	}
	walk(1)
	return out
}

// Neighbor is one k-nearest-neighbour result.
type Neighbor struct {
	Index int32   // body index in the tree's permuted order
	Dist2 float64 // squared distance to the query point
}

// KNN returns the k nearest bodies to (x, y, z) in ascending distance
// order. If the tree holds fewer than k bodies, all of them are returned.
// The traversal descends best-first into the nearer child and prunes
// subtrees farther than the current k-th distance.
func (t *Tree) KNN(x, y, z float64, k int) []Neighbor {
	if k <= 0 || t.n == 0 {
		return nil
	}
	if k > t.n {
		k = t.n
	}
	h := &neighborHeap{}

	var walk func(node int)
	walk = func(node int) {
		if t.lo[node] >= t.hi[node] {
			return
		}
		if h.Len() == k && t.boxDist2(node, x, y, z) > h.peek() {
			return
		}
		if t.isLeafNode(node) {
			for b := t.lo[node]; b < t.hi[node]; b++ {
				dx := t.px(b) - x
				dy := t.py(b) - y
				dz := t.pz(b) - z
				d2 := dx*dx + dy*dy + dz*dz
				if h.Len() < k {
					heap.Push(h, Neighbor{b, d2})
				} else if d2 < h.peek() {
					(*h)[0] = Neighbor{b, d2}
					heap.Fix(h, 0)
				}
			}
			return
		}
		// Visit the nearer child first so pruning kicks in early.
		l, r := 2*node, 2*node+1
		if t.boxDist2(l, x, y, z) > t.boxDist2(r, x, y, z) {
			l, r = r, l
		}
		walk(l)
		walk(r)
	}
	walk(1)

	// Drain the max-heap into ascending order.
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	return out
}

// isLeafNode mirrors the build's early-leaf rule.
func (t *Tree) isLeafNode(node int) bool {
	return node >= t.numLeaves || int(t.hi[node]-t.lo[node]) <= t.cfg.LeafSize
}

// boxDist2 returns the squared distance from the point to node i's box.
func (t *Tree) boxDist2(i int, x, y, z float64) float64 {
	var d2 float64
	if v := t.minX[i] - x; v > 0 {
		d2 += v * v
	} else if v := x - t.maxX[i]; v > 0 {
		d2 += v * v
	}
	if v := t.minY[i] - y; v > 0 {
		d2 += v * v
	} else if v := y - t.maxY[i]; v > 0 {
		d2 += v * v
	}
	if v := t.minZ[i] - z; v > 0 {
		d2 += v * v
	} else if v := z - t.maxZ[i]; v > 0 {
		d2 += v * v
	}
	return d2
}

// Position accessors for the permuted body arrays captured by Build.
func (t *Tree) px(b int32) float64 { return t.posX[b] }
func (t *Tree) py(b int32) float64 { return t.posY[b] }
func (t *Tree) pz(b int32) float64 { return t.posZ[b] }

// neighborHeap is a max-heap by Dist2 (the root is the worst of the best k).
type neighborHeap []Neighbor

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) Less(i, j int) bool { return h[i].Dist2 > h[j].Dist2 }
func (h neighborHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h neighborHeap) peek() float64      { return h[0].Dist2 }
