package kdtree

import (
	"math"
	"testing"
	"testing/quick"

	"nbody/internal/allpairs"
	"nbody/internal/body"
	"nbody/internal/grav"
	"nbody/internal/par"
)

func TestDualExactWhenThetaZero(t *testing.T) {
	for _, n := range []int{2, 10, 100, 800} {
		for _, leaf := range []int{1, 8} {
			s := randomSystem(n, uint64(n)+101)
			tree := New(Config{LeafSize: leaf})
			tree.Build(rt, s)
			ref := s.Clone()
			p := grav.Params{G: 1.5, Eps: 1e-3, Theta: 0}
			allpairs.AllPairs(rt, par.ParUnseq, ref, p)
			tree.DualAccelerations(rt, s, p)
			for i := 0; i < n; i++ {
				d := s.Acc(i).Sub(ref.Acc(i)).Norm()
				if d > 1e-9*(1+ref.Acc(i).Norm()) {
					t.Fatalf("n=%d leaf=%d body %d: dual %v vs exact %v", n, leaf, i, s.Acc(i), ref.Acc(i))
				}
			}
		}
	}
}

func TestDualApproximation(t *testing.T) {
	n := 3000
	s := randomSystem(n, 103)
	tree := New(Config{})
	tree.Build(rt, s)
	ref := s.Clone()
	p := grav.Params{G: 1, Eps: 1e-3, Theta: 0.4}
	allpairs.AllPairs(rt, par.ParUnseq, ref, p)
	tree.DualAccelerations(rt, s, p)

	var meanMag float64
	for i := 0; i < n; i++ {
		meanMag += ref.Acc(i).Norm()
	}
	meanMag /= float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Acc(i).Sub(ref.Acc(i)).Norm() / (ref.Acc(i).Norm() + 0.1*meanMag)
	}
	// The mutual zeroth-order approximation is coarser than single-tree
	// BH for equal θ; at θ=0.4 a few percent mean error is acceptable.
	if mean := sum / float64(n); mean > 0.05 {
		t.Errorf("mean normalized force error %v", mean)
	}
}

// Dual-tree interactions are applied symmetrically, so total momentum flux
// is exactly zero up to atomic-add rounding — stronger than single-tree BH.
func TestDualMomentumConservation(t *testing.T) {
	n := 2000
	s := randomSystem(n, 107)
	tree := New(Config{})
	tree.Build(rt, s)
	p := grav.Params{G: 1, Eps: 1e-3, Theta: 0.6}
	tree.DualAccelerations(rt, s, p)

	var fx, fy, fz, scale float64
	for i := 0; i < n; i++ {
		fx += s.Mass[i] * s.AccX[i]
		fy += s.Mass[i] * s.AccY[i]
		fz += s.Mass[i] * s.AccZ[i]
		scale += s.Mass[i] * s.Acc(i).Norm()
	}
	if net := math.Abs(fx) + math.Abs(fy) + math.Abs(fz); net > 1e-9*scale {
		t.Errorf("net force %g (scale %g) — third law violated", net, scale)
	}
}

// Single-tree BH momentum error is nonzero (asymmetric approximation);
// dual-tree must be categorically better on the same system.
func TestDualMoreSymmetricThanSingle(t *testing.T) {
	n := 3000
	p := grav.Params{G: 1, Eps: 1e-3, Theta: 0.7}

	netForce := func(run func(tree *Tree, s *bodySystem)) float64 {
		s := randomSystem(n, 109)
		tree := New(Config{})
		tree.Build(rt, s)
		run(tree, s)
		var fx, fy, fz float64
		for i := 0; i < n; i++ {
			fx += s.Mass[i] * s.AccX[i]
			fy += s.Mass[i] * s.AccY[i]
			fz += s.Mass[i] * s.AccZ[i]
		}
		return math.Abs(fx) + math.Abs(fy) + math.Abs(fz)
	}

	single := netForce(func(tree *Tree, s *bodySystem) { tree.Accelerations(rt, par.ParUnseq, s, p) })
	dual := netForce(func(tree *Tree, s *bodySystem) { tree.DualAccelerations(rt, s, p) })
	if dual > single/10 && single > 1e-9 {
		t.Errorf("dual net force %g not well below single-tree %g", dual, single)
	}
}

func TestDualEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		s := randomSystem(n, uint64(n)+113)
		tree := New(Config{})
		tree.Build(rt, s)
		tree.DualAccelerations(rt, s, grav.DefaultParams())
		for i := 0; i < n; i++ {
			if !s.Acc(i).IsFinite() {
				t.Fatalf("n=%d body %d: %v", n, i, s.Acc(i))
			}
		}
	}
}

// Property: θ=0 dual traversal equals all-pairs on random small systems.
func TestPropDualExact(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		s := randomSystem(n, seed)
		tree := New(Config{LeafSize: 4})
		tree.Build(rt, s)
		ref := s.Clone()
		p := grav.Params{G: 1, Eps: 1e-3, Theta: 0}
		allpairs.AllPairs(rt, par.ParUnseq, ref, p)
		tree.DualAccelerations(rt, s, p)
		for i := 0; i < n; i++ {
			if s.Acc(i).Sub(ref.Acc(i)).Norm() > 1e-8*(1+ref.Acc(i).Norm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bodySystem shortens the comparison helper's signature.
type bodySystem = body.System

func BenchmarkDualForce1e5(b *testing.B) {
	s := randomSystem(100000, 1)
	tree := New(Config{})
	tree.Build(rt, s)
	p := grav.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.DualAccelerations(rt, s, p)
	}
}
