// Package kdtree implements a parallel kd-tree Barnes-Hut solver — the
// third hierarchical spatial decomposition the paper's Section IV lists
// alongside octrees and BVHs ("Popular data-structures … include trees,
// such as quadtrees, octrees, kd-trees, and BVH"). It is provided as an
// extension baseline: a median-split kd-tree adapts to the body
// distribution like the BVH but partitions by coordinate rather than by a
// space-filling curve, producing tighter boxes at the cost of a partition
// (quickselect) pass per node instead of one global sort.
//
// Shape: count-median splits produce a balanced binary tree stored as an
// implicit heap (node i → children 2i, 2i+1), so the same stackless
// skip-list traversal as the BVH applies. Each node records its body range
// [lo, hi) in the (permuted) body arrays, its bounding box, and its
// monopole moments.
//
// Parallelism: the build recursively partitions the body permutation with
// quickselect along each node's widest axis, forking goroutines for
// independent subtrees above a grain cutoff (divide-and-conquer
// parallelism, in contrast to the octree's flat O(N) loop). Boxes and
// moments are computed on the way back up. The force traversal is a
// par_unseq Parallel For, identical in requirements to the BVH's.
package kdtree

import (
	"fmt"
	"math"
	"sync"

	"nbody/internal/body"
	"nbody/internal/bounds"
	"nbody/internal/grav"
	"nbody/internal/par"
	"nbody/internal/vec"
)

// Config selects kd-tree variants.
type Config struct {
	// LeafSize is the maximum number of bodies per leaf. The default (0)
	// selects 8, a good balance for the pairwise leaf kernel.
	LeafSize int
	// Grain is the subtree size below which the build stops forking
	// goroutines. The default (0) selects 2048.
	Grain int
	// Dual selects the dual-tree (mutual) traversal for force
	// calculation instead of the per-body single-tree walk. See
	// DualAccelerations for the accuracy trade-off.
	Dual bool
}

// Tree is a parallel kd-tree. Reusable across Build calls; the zero value
// is not usable — call New.
type Tree struct {
	cfg Config

	numLeaves int // power of two
	n         int

	// Heap arrays indexed 1..2·numLeaves-1 (0 unused).
	lo, hi           []int32
	minX, minY, minZ []float64
	maxX, maxY, maxZ []float64
	m                []float64
	comX, comY, comZ []float64

	// Node-level acceleration accumulators for the dual-tree traversal.
	nodeAX, nodeAY, nodeAZ []float64

	// Body position arrays (post-permutation) captured by Build for the
	// neighbour queries.
	posX, posY, posZ []float64

	perm []int32
}

// New returns an empty tree with the given configuration.
func New(cfg Config) *Tree {
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = 8
	}
	if cfg.Grain <= 0 {
		cfg.Grain = 2048
	}
	return &Tree{cfg: cfg}
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// NumLeaves returns the number of leaf slots after Build.
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Build constructs the kd-tree over the bodies of s, permuting them into
// tree order (callers tracking identity must use s.ID). It computes boxes
// and moments in the same pass, so no separate multipole step is needed.
func (t *Tree) Build(r *par.Runtime, s *body.System) {
	n := s.N()
	t.n = n

	wantLeaves := (n + t.cfg.LeafSize - 1) / t.cfg.LeafSize
	numLeaves := 1
	for numLeaves < wantLeaves {
		numLeaves *= 2
	}
	if t.numLeaves != numLeaves || len(t.m) == 0 {
		t.numLeaves = numLeaves
		nodes := 2 * numLeaves
		t.lo = make([]int32, nodes)
		t.hi = make([]int32, nodes)
		t.minX = make([]float64, nodes)
		t.minY = make([]float64, nodes)
		t.minZ = make([]float64, nodes)
		t.maxX = make([]float64, nodes)
		t.maxY = make([]float64, nodes)
		t.maxZ = make([]float64, nodes)
		t.m = make([]float64, nodes)
		t.comX = make([]float64, nodes)
		t.comY = make([]float64, nodes)
		t.comZ = make([]float64, nodes)
	}

	if len(t.perm) < n {
		t.perm = make([]int32, n)
	}
	perm := t.perm[:n]
	r.ForGrain(par.ParUnseq, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			perm[i] = int32(i)
		}
	})

	if n > 0 {
		t.recurse(s, perm, 1, 0, n)
	} else {
		t.lo[1], t.hi[1] = 0, 0
		t.setEmpty(1)
	}

	// Materialize the tree order so leaf ranges are contiguous in memory
	// for the force kernel.
	if n > 0 {
		s.Permute(r, par.ParUnseq, perm)
	}
	t.posX, t.posY, t.posZ = s.PosX, s.PosY, s.PosZ
}

// recurse builds the subtree rooted at heap node covering perm[lo:hi],
// returning with the node's box and moments filled in.
func (t *Tree) recurse(s *body.System, perm []int32, node int32, lo, hi int) {
	t.lo[node], t.hi[node] = int32(lo), int32(hi)
	if lo >= hi {
		t.setEmpty(node)
		return
	}

	if int(node) >= t.numLeaves || hi-lo <= t.cfg.LeafSize {
		// Leaf: direct box and moment computation. (A node can become a
		// leaf early when its range fits; deeper heap slots then stay
		// empty and the traversal never descends to them.)
		t.leafMoments(s, perm, node, lo, hi)
		return
	}

	// Split at the count median along the widest axis of the point
	// bounds (computed cheaply from a sampled box when large).
	axis := widestAxis(s, perm[lo:hi])
	mid := (lo + hi) / 2
	quickselect(s, perm, lo, hi, mid, axis)

	l, r := 2*node, 2*node+1
	if hi-lo >= t.cfg.Grain {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.recurse(s, perm, l, lo, mid)
		}()
		t.recurse(s, perm, r, mid, hi)
		wg.Wait()
	} else {
		t.recurse(s, perm, l, lo, mid)
		t.recurse(s, perm, r, mid, hi)
	}

	// Combine children (both non-empty by construction: lo < mid < hi).
	t.minX[node] = math.Min(t.minX[l], t.minX[r])
	t.minY[node] = math.Min(t.minY[l], t.minY[r])
	t.minZ[node] = math.Min(t.minZ[l], t.minZ[r])
	t.maxX[node] = math.Max(t.maxX[l], t.maxX[r])
	t.maxY[node] = math.Max(t.maxY[l], t.maxY[r])
	t.maxZ[node] = math.Max(t.maxZ[l], t.maxZ[r])
	m := t.m[l] + t.m[r]
	t.m[node] = m
	if m > 0 {
		t.comX[node] = (t.m[l]*t.comX[l] + t.m[r]*t.comX[r]) / m
		t.comY[node] = (t.m[l]*t.comY[l] + t.m[r]*t.comY[r]) / m
		t.comZ[node] = (t.m[l]*t.comZ[l] + t.m[r]*t.comZ[r]) / m
	} else {
		t.comX[node] = 0.5 * (t.minX[node] + t.maxX[node])
		t.comY[node] = 0.5 * (t.minY[node] + t.maxY[node])
		t.comZ[node] = 0.5 * (t.minZ[node] + t.maxZ[node])
	}
}

func (t *Tree) leafMoments(s *body.System, perm []int32, node int32, lo, hi int) {
	bmin := vec.Splat(math.Inf(1))
	bmax := vec.Splat(math.Inf(-1))
	var lm, lx, ly, lz float64
	for k := lo; k < hi; k++ {
		b := perm[k]
		p := vec.V3{X: s.PosX[b], Y: s.PosY[b], Z: s.PosZ[b]}
		bmin = bmin.Min(p)
		bmax = bmax.Max(p)
		mb := s.Mass[b]
		lm += mb
		lx += mb * p.X
		ly += mb * p.Y
		lz += mb * p.Z
	}
	t.minX[node], t.minY[node], t.minZ[node] = bmin.X, bmin.Y, bmin.Z
	t.maxX[node], t.maxY[node], t.maxZ[node] = bmax.X, bmax.Y, bmax.Z
	t.m[node] = lm
	if lm > 0 {
		t.comX[node], t.comY[node], t.comZ[node] = lx/lm, ly/lm, lz/lm
	} else {
		c := bmin.Add(bmax).Scale(0.5)
		t.comX[node], t.comY[node], t.comZ[node] = c.X, c.Y, c.Z
	}
}

func (t *Tree) setEmpty(node int32) {
	t.minX[node], t.minY[node], t.minZ[node] = math.Inf(1), math.Inf(1), math.Inf(1)
	t.maxX[node], t.maxY[node], t.maxZ[node] = math.Inf(-1), math.Inf(-1), math.Inf(-1)
	t.m[node] = 0
	t.comX[node], t.comY[node], t.comZ[node] = 0, 0, 0
}

// widestAxis returns 0, 1 or 2 for the axis with the largest coordinate
// spread over the given bodies.
func widestAxis(s *body.System, ids []int32) int {
	minV := vec.Splat(math.Inf(1))
	maxV := vec.Splat(math.Inf(-1))
	for _, b := range ids {
		p := vec.V3{X: s.PosX[b], Y: s.PosY[b], Z: s.PosZ[b]}
		minV = minV.Min(p)
		maxV = maxV.Max(p)
	}
	ext := maxV.Sub(minV)
	axis := 0
	if ext.Y > ext.Component(axis) {
		axis = 1
	}
	if ext.Z > ext.Component(axis) {
		axis = 2
	}
	return axis
}

// coord returns body b's position along axis.
func coord(s *body.System, b int32, axis int) float64 {
	switch axis {
	case 0:
		return s.PosX[b]
	case 1:
		return s.PosY[b]
	}
	return s.PosZ[b]
}

// quickselect partially sorts perm[lo:hi] so that perm[k] holds the k-th
// smallest body by coordinate along axis, everything before it is ≤ and
// everything after is ≥ (Hoare partitioning with median-of-three pivots,
// insertion sort below a cutoff).
func quickselect(s *body.System, perm []int32, lo, hi, k, axis int) {
	for hi-lo > 16 {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		a, b, c := coord(s, perm[lo], axis), coord(s, perm[mid], axis), coord(s, perm[hi-1], axis)
		var pivot float64
		switch {
		case (a <= b && b <= c) || (c <= b && b <= a):
			pivot = b
		case (b <= a && a <= c) || (c <= a && a <= b):
			pivot = a
		default:
			pivot = c
		}

		i, j := lo, hi-1
		for i <= j {
			for coord(s, perm[i], axis) < pivot {
				i++
			}
			for coord(s, perm[j], axis) > pivot {
				j--
			}
			if i <= j {
				perm[i], perm[j] = perm[j], perm[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return // pivot zone covers k
		}
	}
	// Insertion sort the remaining window.
	for i := lo + 1; i < hi; i++ {
		v := perm[i]
		key := coord(s, v, axis)
		j := i - 1
		for j >= lo && coord(s, perm[j], axis) > key {
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = v
	}
}

// Accelerations performs the Barnes-Hut force calculation with the same
// stackless skip-list traversal as the BVH (the heap layouts are
// identical), writing G-scaled accelerations into the system.
func (t *Tree) Accelerations(r *par.Runtime, pol par.Policy, s *body.System, p grav.Params) {
	n := s.N()
	eps2 := p.Eps2()
	theta2 := p.Theta * p.Theta
	numLeaves := t.numLeaves

	posX, posY, posZ, mass := s.PosX, s.PosY, s.PosZ, s.Mass

	r.ForGrain(pol, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi, yi, zi := posX[i], posY[i], posZ[i]
			var ax, ay, az float64

			node := 1
			for node != 0 {
				if t.lo[node] >= t.hi[node] {
					node = skipNext(node)
					continue
				}
				isLeaf := node >= numLeaves || int(t.hi[node]-t.lo[node]) <= t.cfg.LeafSize
				if !isLeaf {
					dx := t.comX[node] - xi
					dy := t.comY[node] - yi
					dz := t.comZ[node] - zi
					d2 := dx*dx + dy*dy + dz*dz
					size := t.extent(node)
					if size*size < theta2*d2 {
						grav.Accumulate(dx, dy, dz, t.m[node], eps2, &ax, &ay, &az)
						node = skipNext(node)
					} else {
						node = 2 * node
					}
					continue
				}
				for b := t.lo[node]; b < t.hi[node]; b++ {
					if int(b) == i {
						continue
					}
					grav.Accumulate(posX[b]-xi, posY[b]-yi, posZ[b]-zi, mass[b], eps2, &ax, &ay, &az)
				}
				node = skipNext(node)
			}

			s.AccX[i] = p.G * ax
			s.AccY[i] = p.G * ay
			s.AccZ[i] = p.G * az
		}
	})
}

func (t *Tree) extent(i int) float64 {
	ex := t.maxX[i] - t.minX[i]
	if ey := t.maxY[i] - t.minY[i]; ey > ex {
		ex = ey
	}
	if ez := t.maxZ[i] - t.minZ[i]; ez > ex {
		ex = ez
	}
	return ex
}

func skipNext(node int) int {
	for node != 1 && node&1 == 1 {
		node >>= 1
	}
	if node == 1 {
		return 0
	}
	return node + 1
}

// NodeBox returns node i's bounding box. Exposed for tests.
func (t *Tree) NodeBox(i int) bounds.AABB {
	return bounds.AABB{
		Min: vec.V3{X: t.minX[i], Y: t.minY[i], Z: t.minZ[i]},
		Max: vec.V3{X: t.maxX[i], Y: t.maxY[i], Z: t.maxZ[i]},
	}
}

// NodeRange returns the body range [lo, hi) of node i. Exposed for tests.
func (t *Tree) NodeRange(i int) (lo, hi int) { return int(t.lo[i]), int(t.hi[i]) }

// TotalMass returns the root's mass after Build.
func (t *Tree) TotalMass() float64 { return t.m[1] }

// String implements fmt.Stringer.
func (t *Tree) String() string {
	return fmt.Sprintf("kdtree{n: %d, leaves: %d, leafSize: %d}", t.n, t.numLeaves, t.cfg.LeafSize)
}
