package kdtree

import (
	"math"
	"testing"
	"testing/quick"

	"nbody/internal/allpairs"
	"nbody/internal/body"
	"nbody/internal/grav"
	"nbody/internal/par"
	"nbody/internal/rng"
	"nbody/internal/vec"
)

var rt = par.NewRuntime(0, par.Dynamic)

func randomSystem(n int, seed uint64) *body.System {
	src := rng.New(seed)
	s := body.NewSystem(n)
	for i := 0; i < n; i++ {
		s.Set(i, src.Range(0.5, 1.5),
			vec.New(src.Range(-10, 10), src.Range(-10, 10), src.Range(-10, 10)),
			vec.Zero)
	}
	return s
}

// checkStructure verifies ranges partition [0, n), boxes contain their
// bodies, and root totals match.
func checkStructure(t *testing.T, tree *Tree, s *body.System) {
	t.Helper()
	n := s.N()
	if n == 0 {
		return
	}

	// Walk the tree exactly as the traversal does, collecting leaves.
	covered := make([]bool, n)
	var walk func(node int)
	walk = func(node int) {
		lo, hi := tree.NodeRange(node)
		if lo >= hi {
			return
		}
		box := tree.NodeBox(node)
		for b := lo; b < hi; b++ {
			if !box.Contains(s.Pos(b)) {
				t.Fatalf("node %d box %v missing body %d at %v", node, box, b, s.Pos(b))
			}
		}
		isLeaf := node >= tree.NumLeaves() || hi-lo <= tree.Config().LeafSize
		if isLeaf {
			for b := lo; b < hi; b++ {
				if covered[b] {
					t.Fatalf("body %d covered twice", b)
				}
				covered[b] = true
			}
			return
		}
		llo, lhi := tree.NodeRange(2 * node)
		rlo, rhi := tree.NodeRange(2*node + 1)
		if llo != lo || rhi != hi || lhi != rlo {
			t.Fatalf("node %d children ranges [%d,%d)+[%d,%d) do not partition [%d,%d)",
				node, llo, lhi, rlo, rhi, lo, hi)
		}
		walk(2 * node)
		walk(2*node + 1)
	}
	walk(1)
	for b, ok := range covered {
		if !ok {
			t.Fatalf("body %d not covered by any leaf", b)
		}
	}

	wantMass := s.TotalMass()
	if math.Abs(tree.TotalMass()-wantMass) > 1e-9*(1+wantMass) {
		t.Fatalf("root mass %v, want %v", tree.TotalMass(), wantMass)
	}
}

func TestBuildStructure(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 8, 9, 100, 5000} {
		for _, leaf := range []int{1, 8, 32} {
			s := randomSystem(n, uint64(n*10+leaf))
			tree := New(Config{LeafSize: leaf})
			tree.Build(rt, s)
			checkStructure(t, tree, s)
		}
	}
}

func TestMedianSplitBalance(t *testing.T) {
	// Count-median splits must halve ranges exactly.
	s := randomSystem(4096, 3)
	tree := New(Config{LeafSize: 1})
	tree.Build(rt, s)
	lo, hi := tree.NodeRange(2)
	if hi-lo != 2048 {
		t.Errorf("left child of root covers %d bodies, want 2048", hi-lo)
	}
}

func TestForceExactWhenThetaZero(t *testing.T) {
	for _, n := range []int{2, 50, 1000} {
		s := randomSystem(n, uint64(n)+5)
		tree := New(Config{})
		tree.Build(rt, s)
		ref := s.Clone()
		p := grav.Params{G: 1, Eps: 1e-3, Theta: 0}
		allpairs.AllPairs(rt, par.ParUnseq, ref, p)
		tree.Accelerations(rt, par.ParUnseq, s, p)
		for i := 0; i < n; i++ {
			if s.Acc(i).Sub(ref.Acc(i)).Norm() > 1e-10*(1+ref.Acc(i).Norm()) {
				t.Fatalf("n=%d body %d: %v vs %v", n, i, s.Acc(i), ref.Acc(i))
			}
		}
	}
}

func TestForceApproximation(t *testing.T) {
	n := 2000
	s := randomSystem(n, 7)
	tree := New(Config{})
	tree.Build(rt, s)
	ref := s.Clone()
	p := grav.Params{G: 1, Eps: 1e-3, Theta: 0.5}
	allpairs.AllPairs(rt, par.ParUnseq, ref, p)
	tree.Accelerations(rt, par.ParUnseq, s, p)

	var meanMag float64
	for i := 0; i < n; i++ {
		meanMag += ref.Acc(i).Norm()
	}
	meanMag /= float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Acc(i).Sub(ref.Acc(i)).Norm() / (ref.Acc(i).Norm() + 0.1*meanMag)
	}
	if mean := sum / float64(n); mean > 0.02 {
		t.Errorf("mean normalized force error %v", mean)
	}
}

func TestPermutationTracked(t *testing.T) {
	n := 500
	s := randomSystem(n, 9)
	orig := s.Clone()
	tree := New(Config{})
	tree.Build(rt, s)
	// Every body must be recoverable via ID.
	for i := 0; i < n; i++ {
		id := s.ID[i]
		if s.Pos(i) != orig.Pos(int(id)) {
			t.Fatalf("slot %d claims body %d but positions differ", i, id)
		}
	}
}

func TestCoincidentBodies(t *testing.T) {
	s := body.NewSystem(20)
	for i := 0; i < 20; i++ {
		s.Set(i, 1, vec.New(1, 2, 3), vec.Zero)
	}
	tree := New(Config{LeafSize: 4})
	tree.Build(rt, s)
	checkStructure(t, tree, s)
	tree.Accelerations(rt, par.ParUnseq, s, grav.Params{G: 1, Eps: 0, Theta: 0.5})
	for i := 0; i < s.N(); i++ {
		if !s.Acc(i).IsFinite() {
			t.Fatalf("acceleration %v", s.Acc(i))
		}
	}
}

func TestReuseAcrossBuilds(t *testing.T) {
	tree := New(Config{})
	for step := 0; step < 4; step++ {
		s := randomSystem(300+step*900, uint64(step)+11)
		tree.Build(rt, s)
		checkStructure(t, tree, s)
	}
}

func TestClusteredDistribution(t *testing.T) {
	// Clusters stress the adaptive splitting.
	src := rng.New(13)
	n := 3000
	s := body.NewSystem(n)
	for i := 0; i < n; i++ {
		c := float64(src.Intn(3)) * 100
		s.Set(i, 1, vec.New(c+src.Norm(), c+src.Norm(), c+src.Norm()), vec.Zero)
	}
	tree := New(Config{})
	tree.Build(rt, s)
	checkStructure(t, tree, s)

	ref := s.Clone()
	p := grav.Params{G: 1, Eps: 1e-3, Theta: 0}
	allpairs.AllPairs(rt, par.ParUnseq, ref, p)
	tree.Accelerations(rt, par.ParUnseq, s, p)
	for i := 0; i < n; i++ {
		if s.Acc(i).Sub(ref.Acc(i)).Norm() > 1e-9*(1+ref.Acc(i).Norm()) {
			t.Fatalf("body %d force mismatch", i)
		}
	}
}

func TestStringer(t *testing.T) {
	tree := New(Config{})
	tree.Build(rt, randomSystem(10, 1))
	if len(tree.String()) == 0 {
		t.Error("empty String")
	}
}

// Property: structure invariants and θ=0 exactness for random systems.
func TestPropBuildAndForce(t *testing.T) {
	f := func(seed uint64, nRaw uint8, leafRaw uint8) bool {
		n := int(nRaw%80) + 1
		leaf := int(leafRaw%8) + 1
		s := randomSystem(n, seed)
		tree := New(Config{LeafSize: leaf})
		tree.Build(rt, s)
		ref := s.Clone()
		p := grav.Params{G: 1, Eps: 1e-3, Theta: 0}
		allpairs.AllPairs(rt, par.ParUnseq, ref, p)
		tree.Accelerations(rt, par.ParUnseq, s, p)
		for i := 0; i < n; i++ {
			if s.Acc(i).Sub(ref.Acc(i)).Norm() > 1e-9*(1+ref.Acc(i).Norm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild1e5(b *testing.B) {
	s := randomSystem(100000, 1)
	tree := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Build(rt, s)
	}
}

func BenchmarkForce1e5(b *testing.B) {
	s := randomSystem(100000, 1)
	tree := New(Config{})
	tree.Build(rt, s)
	p := grav.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Accelerations(rt, par.ParUnseq, s, p)
	}
}
