package kdtree

import (
	"math"
	"sync"

	"nbody/internal/atomicx"
	"nbody/internal/body"
	"nbody/internal/grav"
	"nbody/internal/par"
)

// sqrt keeps the hot pairwise loops terse.
func sqrt(x float64) float64 { return math.Sqrt(x) }

// DualAccelerations computes forces with a *dual-tree* (mutual) traversal —
// the symmetric-treecode idea the fast-multipole literature the paper cites
// builds on: instead of one root-to-leaf walk per body (N single-tree
// traversals), node *pairs* are examined once. Two well-separated nodes
// interact through their monopoles, contributing an identical acceleration
// to every body underneath each side; unseparated pairs recurse into the
// larger side; leaf-leaf pairs compute exact body-body interactions. A
// final downward sweep pushes the accumulated node-level accelerations to
// the bodies.
//
// Compared with Accelerations, the acceptance criterion is mutual —
// (extent(a) + extent(b)) < θ·dist(comₐ, com_b) — and the approximation is
// zeroth-order on the target side (all bodies of a node receive the same
// pull), so for equal θ the error is larger; the θ=0 limit is exact, and
// Newton's third law holds by construction. Parallelism is task-recursive:
// independent pair tasks fork above a grain cutoff, and all shared
// accumulators are updated atomically, which under the paper's taxonomy
// makes this a par-policy (not par_unseq) algorithm.
func (t *Tree) DualAccelerations(r *par.Runtime, s *body.System, p grav.Params) {
	n := s.N()
	nodes := 2 * t.numLeaves

	if len(t.nodeAX) < nodes {
		t.nodeAX = make([]float64, nodes)
		t.nodeAY = make([]float64, nodes)
		t.nodeAZ = make([]float64, nodes)
	}
	r.ForGrain(par.ParUnseq, nodes, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.nodeAX[i], t.nodeAY[i], t.nodeAZ[i] = 0, 0, 0
		}
	})
	r.ForGrain(par.ParUnseq, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.AccX[i], s.AccY[i], s.AccZ[i] = 0, 0, 0
		}
	})
	if n == 0 {
		return
	}

	d := &dualWalk{t: t, s: s, eps2: p.Eps2(), theta: p.Theta, grain: 4 * t.cfg.Grain}
	d.pair(1, 1)
	d.wg.Wait()

	// Downward sweep: push node-level accelerations to the bodies, then
	// apply G to the combined (node + direct) sums.
	t.downSweep(s, 1, 0, 0, 0)
	if p.G != 1 {
		r.ForGrain(par.ParUnseq, n, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.AccX[i] *= p.G
				s.AccY[i] *= p.G
				s.AccZ[i] *= p.G
			}
		})
	}
}

// dualWalk carries the traversal state.
type dualWalk struct {
	t     *Tree
	s     *body.System
	eps2  float64
	theta float64
	grain int
	wg    sync.WaitGroup
}

// size returns the body count under node a.
func (d *dualWalk) size(a int) int { return int(d.t.hi[a] - d.t.lo[a]) }

// isLeaf mirrors the build's early-leaf rule.
func (d *dualWalk) isLeaf(a int) bool {
	return a >= d.t.numLeaves || d.size(a) <= d.t.cfg.LeafSize
}

// pair processes the interaction of nodes a ≤ b (heap indices).
func (d *dualWalk) pair(a, b int) {
	t := d.t
	if d.size(a) == 0 || d.size(b) == 0 {
		return
	}

	if a == b {
		if d.isLeaf(a) {
			d.leafSelf(a)
			return
		}
		l, r := 2*a, 2*a+1
		d.fork(l, l)
		d.fork(r, r)
		d.fork(l, r)
		return
	}

	// Mutual acceptance test.
	dx := t.comX[b] - t.comX[a]
	dy := t.comY[b] - t.comY[a]
	dz := t.comZ[b] - t.comZ[a]
	d2 := dx*dx + dy*dy + dz*dz
	sum := t.extent(a) + t.extent(b)
	if sum*sum < d.theta*d.theta*d2 {
		d.nodeNode(a, b, dx, dy, dz, d2)
		return
	}

	aLeaf, bLeaf := d.isLeaf(a), d.isLeaf(b)
	switch {
	case aLeaf && bLeaf:
		d.leafLeaf(a, b)
	case aLeaf || (!bLeaf && d.size(b) >= d.size(a)):
		// Split b (the larger, or the only splittable side).
		d.fork(a, 2*b)
		d.fork(a, 2*b+1)
	default:
		d.fork(2*a, b)
		d.fork(2*a+1, b)
	}
}

// fork runs pair(a, b) inline or on a new goroutine when both sides are
// large enough to pay for it.
func (d *dualWalk) fork(a, b int) {
	if d.size(a)+d.size(b) >= d.grain {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.pair(a, b)
		}()
		return
	}
	d.pair(a, b)
}

// nodeNode applies the mutual monopole interaction: every body under a is
// pulled toward com_b and vice versa (equal and opposite per unit mass).
func (d *dualWalk) nodeNode(a, b int, dx, dy, dz, d2 float64) {
	t := d.t
	r2 := d2 + d.eps2
	if r2 == 0 {
		return
	}
	inv := 1 / sqrt(r2)
	f := inv * inv * inv
	atomicx.AddFloat64(&t.nodeAX[a], t.m[b]*f*dx)
	atomicx.AddFloat64(&t.nodeAY[a], t.m[b]*f*dy)
	atomicx.AddFloat64(&t.nodeAZ[a], t.m[b]*f*dz)
	atomicx.AddFloat64(&t.nodeAX[b], -t.m[a]*f*dx)
	atomicx.AddFloat64(&t.nodeAY[b], -t.m[a]*f*dy)
	atomicx.AddFloat64(&t.nodeAZ[b], -t.m[a]*f*dz)
}

// leafSelf computes the exact interactions inside one leaf.
func (d *dualWalk) leafSelf(a int) {
	t, s := d.t, d.s
	lo, hi := int(t.lo[a]), int(t.hi[a])
	for i := lo; i < hi; i++ {
		xi, yi, zi, mi := s.PosX[i], s.PosY[i], s.PosZ[i], s.Mass[i]
		for j := i + 1; j < hi; j++ {
			dx := s.PosX[j] - xi
			dy := s.PosY[j] - yi
			dz := s.PosZ[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + d.eps2
			if r2 == 0 {
				continue
			}
			inv := 1 / sqrt(r2)
			f := inv * inv * inv
			atomicx.AddFloat64(&s.AccX[i], s.Mass[j]*f*dx)
			atomicx.AddFloat64(&s.AccY[i], s.Mass[j]*f*dy)
			atomicx.AddFloat64(&s.AccZ[i], s.Mass[j]*f*dz)
			atomicx.AddFloat64(&s.AccX[j], -mi*f*dx)
			atomicx.AddFloat64(&s.AccY[j], -mi*f*dy)
			atomicx.AddFloat64(&s.AccZ[j], -mi*f*dz)
		}
	}
}

// leafLeaf computes the exact interactions between two distinct leaves.
func (d *dualWalk) leafLeaf(a, b int) {
	t, s := d.t, d.s
	alo, ahi := int(t.lo[a]), int(t.hi[a])
	blo, bhi := int(t.lo[b]), int(t.hi[b])
	for i := alo; i < ahi; i++ {
		xi, yi, zi, mi := s.PosX[i], s.PosY[i], s.PosZ[i], s.Mass[i]
		var ax, ay, az float64
		for j := blo; j < bhi; j++ {
			dx := s.PosX[j] - xi
			dy := s.PosY[j] - yi
			dz := s.PosZ[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + d.eps2
			if r2 == 0 {
				continue
			}
			inv := 1 / sqrt(r2)
			f := inv * inv * inv
			ax += s.Mass[j] * f * dx
			ay += s.Mass[j] * f * dy
			az += s.Mass[j] * f * dz
			atomicx.AddFloat64(&s.AccX[j], -mi*f*dx)
			atomicx.AddFloat64(&s.AccY[j], -mi*f*dy)
			atomicx.AddFloat64(&s.AccZ[j], -mi*f*dz)
		}
		atomicx.AddFloat64(&s.AccX[i], ax)
		atomicx.AddFloat64(&s.AccY[i], ay)
		atomicx.AddFloat64(&s.AccZ[i], az)
	}
}

// downSweep pushes accumulated node accelerations down to the bodies,
// carrying the running sum of ancestors.
func (t *Tree) downSweep(s *body.System, node int, cx, cy, cz float64) {
	if t.lo[node] >= t.hi[node] {
		return
	}
	cx += t.nodeAX[node]
	cy += t.nodeAY[node]
	cz += t.nodeAZ[node]
	isLeaf := node >= t.numLeaves || int(t.hi[node]-t.lo[node]) <= t.cfg.LeafSize
	if isLeaf {
		for b := t.lo[node]; b < t.hi[node]; b++ {
			s.AccX[b] += cx
			s.AccY[b] += cy
			s.AccZ[b] += cz
		}
		return
	}
	t.downSweep(s, 2*node, cx, cy, cz)
	t.downSweep(s, 2*node+1, cx, cy, cz)
}
