package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"nbody/internal/rng"
	"nbody/internal/vec"
)

// bruteRange is the O(N) range-query reference over the (permuted) system.
func bruteRange(t *Tree, x, y, z, radius float64) []int32 {
	var out []int32
	r2 := radius * radius
	for b := int32(0); b < int32(t.n); b++ {
		dx := t.px(b) - x
		dy := t.py(b) - y
		dz := t.pz(b) - z
		if dx*dx+dy*dy+dz*dz <= r2 {
			out = append(out, b)
		}
	}
	return out
}

func sortedCopy(s []int32) []int32 {
	c := append([]int32(nil), s...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func TestRangeQueryMatchesBrute(t *testing.T) {
	s := randomSystem(2000, 211)
	tree := New(Config{})
	tree.Build(rt, s)
	src := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		x := src.Range(-12, 12)
		y := src.Range(-12, 12)
		z := src.Range(-12, 12)
		radius := src.Range(0, 8)
		got := sortedCopy(tree.RangeQuery(x, y, z, radius, nil))
		want := sortedCopy(bruteRange(tree, x, y, z, radius))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRangeQueryEdgeCases(t *testing.T) {
	s := randomSystem(100, 213)
	tree := New(Config{})
	tree.Build(rt, s)
	if got := tree.RangeQuery(0, 0, 0, -1, nil); got != nil {
		t.Errorf("negative radius returned %v", got)
	}
	// Radius 0 at an exact body position returns that body.
	got := tree.RangeQuery(tree.px(7), tree.py(7), tree.pz(7), 0, nil)
	found := false
	for _, b := range got {
		if b == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("zero-radius query at body 7 returned %v", got)
	}
	// Covering radius returns everything.
	if got := tree.RangeQuery(0, 0, 0, 1e6, nil); len(got) != 100 {
		t.Errorf("covering query returned %d of 100", len(got))
	}
	// Appending to an existing slice preserves its prefix.
	pre := []int32{-7}
	out := tree.RangeQuery(0, 0, 0, 1e6, pre)
	if out[0] != -7 || len(out) != 101 {
		t.Errorf("append contract broken: len=%d first=%d", len(out), out[0])
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	s := randomSystem(1500, 215)
	tree := New(Config{LeafSize: 4})
	tree.Build(rt, s)
	src := rng.New(19)
	for trial := 0; trial < 30; trial++ {
		x := src.Range(-12, 12)
		y := src.Range(-12, 12)
		z := src.Range(-12, 12)
		k := 1 + src.Intn(20)

		got := tree.KNN(x, y, z, k)
		if len(got) != k {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), k)
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].Dist2 < got[i-1].Dist2 {
				t.Fatalf("trial %d: results not sorted", trial)
			}
		}
		// Compare distances with brute force (indices may tie).
		type bd struct{ d2 float64 }
		all := make([]float64, tree.n)
		for b := int32(0); b < int32(tree.n); b++ {
			dx := tree.px(b) - x
			dy := tree.py(b) - y
			dz := tree.pz(b) - z
			all[b] = dx*dx + dy*dy + dz*dz
		}
		sort.Float64s(all)
		for i := range got {
			if math.Abs(got[i].Dist2-all[i]) > 1e-12*(1+all[i]) {
				t.Fatalf("trial %d: k=%d dist %v, want %v", trial, i, got[i].Dist2, all[i])
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	s := randomSystem(10, 217)
	tree := New(Config{})
	tree.Build(rt, s)
	if got := tree.KNN(0, 0, 0, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := tree.KNN(0, 0, 0, 50); len(got) != 10 {
		t.Errorf("k>n returned %d", len(got))
	}
	empty := New(Config{})
	empty.Build(rt, randomSystem(0, 1))
	if got := empty.KNN(0, 0, 0, 3); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	if got := empty.RangeQuery(0, 0, 0, 5, nil); got != nil {
		t.Errorf("empty tree range returned %v", got)
	}
}

func TestKNNSelfQuery(t *testing.T) {
	// Querying at a body's own position: the first neighbour is that body
	// at distance 0.
	s := randomSystem(500, 219)
	tree := New(Config{})
	tree.Build(rt, s)
	for b := int32(0); b < 500; b += 97 {
		got := tree.KNN(tree.px(b), tree.py(b), tree.pz(b), 1)
		if len(got) != 1 || got[0].Dist2 != 0 {
			t.Fatalf("self query at %d: %+v", b, got)
		}
	}
}

// Property: range query results exactly match brute force for random
// configurations and radii.
func TestPropRangeQuery(t *testing.T) {
	f := func(seed uint64, nRaw uint8, rRaw uint8) bool {
		n := int(nRaw%100) + 1
		radius := float64(rRaw) / 16
		s := randomSystem(n, seed)
		tree := New(Config{LeafSize: 2})
		tree.Build(rt, s)
		q := vec.New(0.5, -0.5, 0.25)
		got := sortedCopy(tree.RangeQuery(q.X, q.Y, q.Z, radius, nil))
		want := sortedCopy(bruteRange(tree, q.X, q.Y, q.Z, radius))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKNN(b *testing.B) {
	s := randomSystem(100000, 1)
	tree := New(Config{})
	tree.Build(rt, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(float64(i%20)-10, 0, 0, 16)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	s := randomSystem(100000, 1)
	tree := New(Config{})
	tree.Build(rt, s)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tree.RangeQuery(float64(i%20)-10, 0, 0, 1.0, buf[:0])
	}
}
