package kdtree_test

import (
	"fmt"

	"nbody/internal/body"
	"nbody/internal/kdtree"
	"nbody/internal/par"
	"nbody/internal/vec"
)

// Spatial queries reuse the tree the force solver builds: here a 3-nearest-
// neighbour lookup and a fixed-radius search over a small lattice.
func ExampleTree_KNN() {
	s := body.NewSystem(5)
	for i := 0; i < 5; i++ {
		s.Set(i, 1, vec.New(float64(i), 0, 0), vec.Zero) // bodies at x = 0..4
	}
	tree := kdtree.New(kdtree.Config{LeafSize: 2})
	tree.Build(par.NewRuntime(1, par.Dynamic), s)

	for _, nb := range tree.KNN(0.1, 0, 0, 3) {
		fmt.Printf("x=%.0f d²=%.2f\n", s.PosX[nb.Index], nb.Dist2)
	}
	within := tree.RangeQuery(2, 0, 0, 1.0, nil)
	fmt.Println("within 1 of x=2:", len(within))
	// Output:
	// x=0 d²=0.01
	// x=1 d²=0.81
	// x=2 d²=3.61
	// within 1 of x=2: 3
}
