package stream

import (
	"testing"

	"nbody/internal/par"
)

func TestBenchmarkKernels(t *testing.T) {
	r := par.NewRuntime(0, par.Dynamic)
	results := Benchmark(r, par.ParUnseq, 1<<16, 5)
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	wantNames := []string{"Copy", "Mul", "Add", "Triad", "Dot"}
	for i, res := range results {
		if res.Kernel != wantNames[i] {
			t.Errorf("kernel %d = %q, want %q", i, res.Kernel, wantNames[i])
		}
		if res.GBps <= 0 {
			t.Errorf("%s: bandwidth %v", res.Kernel, res.GBps)
		}
		if res.Best <= 0 || res.Mean < res.Best {
			t.Errorf("%s: best %v mean %v", res.Kernel, res.Best, res.Mean)
		}
		if !res.Checked {
			t.Errorf("%s: verification failed", res.Kernel)
		}
		if len(res.String()) == 0 {
			t.Errorf("%s: empty String", res.Kernel)
		}
	}
}

func TestBenchmarkSequential(t *testing.T) {
	r := par.NewRuntime(1, par.Static)
	results := Benchmark(r, par.Seq, 1<<14, 3)
	for _, res := range results {
		if !res.Checked {
			t.Errorf("%s: verification failed sequentially", res.Kernel)
		}
	}
}

func TestBenchmarkDefaults(t *testing.T) {
	// n<=0 and iters<=0 select defaults; use a tiny override to keep the
	// test fast, but exercise the default path for iters.
	r := par.NewRuntime(2, par.Dynamic)
	results := Benchmark(r, par.ParUnseq, 1<<12, 0)
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if !res.Checked {
			t.Errorf("%s: verification failed", res.Kernel)
		}
	}
}
