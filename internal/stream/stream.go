// Package stream implements the five BabelStream memory-bandwidth kernels
// (Copy, Mul, Add, Triad, Dot) over float64 arrays. The paper validates
// every experimental platform by comparing the measured TRIAD bandwidth of
// the ISO C++ parallel-algorithms BabelStream against theoretical peak
// (Table I); this package reproduces that validation for the Go runtime on
// the host executing the benchmarks.
package stream

import (
	"fmt"
	"math"
	"time"

	"nbody/internal/par"
)

// DefaultN is the default array length: 2²⁵ doubles = 256 MiB per array,
// comfortably exceeding any CPU cache, matching BabelStream's default
// sizing philosophy.
const DefaultN = 1 << 25

// scalar is the BabelStream scalar constant.
const scalar = 0.4

// Result reports one kernel's measured bandwidth.
type Result struct {
	Kernel  string
	Bytes   int64         // bytes moved per iteration
	Best    time.Duration // fastest iteration
	Mean    time.Duration // mean over iterations
	GBps    float64       // best-iteration bandwidth in GB/s (10⁹ bytes)
	Checked bool          // result arrays verified
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%-5s %8.2f GB/s (best %v, mean %v)", r.Kernel, r.GBps, r.Best, r.Mean)
}

// Benchmark runs the five kernels iters times each on arrays of n float64
// and returns per-kernel results in BabelStream order. Initialization
// follows BabelStream (a=0.1, b=0.2, c=0.0); after all timed iterations the
// array contents are verified against the analytically propagated values,
// and Checked is set accordingly.
func Benchmark(r *par.Runtime, pol par.Policy, n, iters int) []Result {
	if n <= 0 {
		n = DefaultN
	}
	if iters <= 0 {
		iters = 10
	}

	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	initA, initB, initC := 0.1, 0.2, 0.0
	r.ForGrain(pol, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i], b[i], c[i] = initA, initB, initC
		}
	})

	type kernel struct {
		name  string
		bytes int64
		run   func() float64 // returns the Dot sum (0 for others)
	}
	kernels := []kernel{
		{"Copy", int64(n) * 16, func() float64 {
			r.ForGrain(pol, n, 0, func(lo, hi int) {
				copy(c[lo:hi], a[lo:hi])
			})
			return 0
		}},
		{"Mul", int64(n) * 16, func() float64 {
			r.ForGrain(pol, n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					b[i] = scalar * c[i]
				}
			})
			return 0
		}},
		{"Add", int64(n) * 24, func() float64 {
			r.ForGrain(pol, n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = a[i] + b[i]
				}
			})
			return 0
		}},
		{"Triad", int64(n) * 24, func() float64 {
			r.ForGrain(pol, n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a[i] = b[i] + scalar*c[i]
				}
			})
			return 0
		}},
		{"Dot", int64(n) * 16, func() float64 {
			return par.ReduceRanges(r, pol, n, 0,
				func(x, y float64) float64 { return x + y },
				func(acc float64, lo, hi int) float64 {
					for i := lo; i < hi; i++ {
						acc += a[i] * b[i]
					}
					return acc
				})
		}},
	}

	results := make([]Result, len(kernels))
	var lastDot float64
	for k, kn := range kernels {
		res := Result{Kernel: kn.name, Bytes: kn.bytes, Best: math.MaxInt64}
		var total time.Duration
		for it := 0; it < iters; it++ {
			start := time.Now()
			dot := kn.run()
			d := time.Since(start)
			if kn.name == "Dot" {
				lastDot = dot
			}
			total += d
			if d < res.Best {
				res.Best = d
			}
		}
		res.Mean = total / time.Duration(iters)
		res.GBps = float64(kn.bytes) / res.Best.Seconds() / 1e9
		results[k] = res
	}

	// Verification: propagate the init values through iters rounds of the
	// first four kernels (each kernel ran iters times back to back, i.e.
	// in BabelStream's grouped order rather than interleaved).
	va, vb, vc := initA, initB, initC
	for it := 0; it < iters; it++ {
		vc = va // all Copy iterations
	}
	for it := 0; it < iters; it++ {
		vb = scalar * vc
	}
	for it := 0; it < iters; it++ {
		vc = va + vb
	}
	for it := 0; it < iters; it++ {
		va = vb + scalar*vc
	}
	wantDot := va * vb * float64(n)

	ok := true
	const tol = 1e-8
	for i := 0; i < n; i += n/97 + 1 { // sample; full scan is pointless
		if relErr(a[i], va) > tol || relErr(b[i], vb) > tol || relErr(c[i], vc) > tol {
			ok = false
			break
		}
	}
	if relErr(lastDot, wantDot) > 1e-6 {
		ok = false
	}
	for k := range results {
		results[k].Checked = ok
	}
	return results
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(math.Abs(want), 1e-300)
}
