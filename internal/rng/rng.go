// Package rng implements a small deterministic pseudo-random number
// generator used by the workload generators.
//
// The simulation workloads in this repository must be bit-reproducible
// across platforms and Go releases (the paper's galaxy-collision workload is
// "deterministic"), so we cannot rely on math/rand whose algorithms and
// seeding behaviour have changed between releases. Instead we implement
// SplitMix64 (Steele, Lea, Flood 2014), a tiny, well-tested 64-bit generator
// with provably full period, plus the usual derived distributions.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0.
type Source struct {
	state    uint64
	spare    float64 // second normal deviate from the polar method
	hasSpare bool
}

// New returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Source { return &Source{state: seed} }

// Split returns a new generator whose stream is independent of s's
// continuing stream. It consumes one value from s.
func (s *Source) Split() *Source { return New(s.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniformly random integer in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method, debiased.
	threshold := (-n) % n
	for {
		hi, lo := bits.Mul64(s.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniformly random float64 in [0, 1) with 53 bits of
// precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Range returns a uniformly random float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normally distributed float64 (mean 0, stddev 1)
// using the Marsaglia polar method.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// Exp returns an exponentially distributed float64 with rate 1
// (mean 1), via inverse transform sampling.
func (s *Source) Exp() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
