package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// Golden values locking the SplitMix64 stream for seed 1234567, so
	// that any future change to the generator (which would silently alter
	// every workload in the repository) fails loudly.
	s := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must not simply replay the parent stream.
	av := make([]uint64, 50)
	for i := range av {
		av[i] = a.Uint64()
	}
	for i := 0; i < 50; i++ {
		v := c.Uint64()
		for _, x := range av {
			if v == x {
				t.Fatalf("split stream collided with parent at %d", i)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := New(5)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := s.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := s.Norm()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		f := s.Exp()
		if f < 0 {
			t.Fatalf("Exp = %v < 0", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	s := New(17)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		f := s.Range(-3, 7)
		if f < -3 || f >= 7 {
			t.Fatalf("Range = %v out of [-3,7)", f)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(31)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermZero(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Errorf("Perm(0) = %v", p)
	}
}

// Property: Intn always lies in range for any positive n and seed.
func TestPropIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the zero-value Source is usable and deterministic.
func TestZeroValueSource(t *testing.T) {
	var a, b Source
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("zero-value sources diverged")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Norm()
	}
	_ = sink
}
