// Command nbody runs a Barnes-Hut (or all-pairs) N-body simulation from the
// command line, printing per-phase timings, throughput and conservation
// diagnostics.
//
// Examples:
//
//	nbody -algo octree -workload galaxy -n 100000 -steps 100
//	nbody -algo bvh -n 1000000 -steps 10 -leaf-size 4
//	nbody -algo all-pairs -n 10000 -seq
//	nbody -workload solarsystem -n 100000 -dt 0.0417 -g 2.959e-4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nbody/internal/body"
	"nbody/internal/bvh"
	"nbody/internal/core"
	"nbody/internal/grav"
	"nbody/internal/metrics"
	"nbody/internal/octree"
	"nbody/internal/par"
	"nbody/internal/snapshot"
	"nbody/internal/trace"
	"nbody/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nbody:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName  = flag.String("algo", "octree", "algorithm: octree, bvh, kdtree, all-pairs, all-pairs-col")
		wlName    = flag.String("workload", "galaxy", "workload: galaxy, galaxy-single, plummer, uniform, clusters, solarsystem")
		n         = flag.Int("n", 100000, "number of bodies")
		steps     = flag.Int("steps", 10, "timesteps to integrate")
		dt        = flag.Float64("dt", 1e-5, "timestep")
		theta     = flag.Float64("theta", 0.5, "Barnes-Hut opening threshold")
		eps       = flag.Float64("eps", 1e-3, "Plummer softening length")
		g         = flag.Float64("g", 1, "gravitational constant")
		seed      = flag.Uint64("seed", 42, "workload seed")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		schedStr  = flag.String("sched", "dynamic", "scheduler: dynamic, static, guided")
		seq       = flag.Bool("seq", false, "sequential execution (replaces every policy with seq)")
		rebuild   = flag.Int("rebuild-every", 1, "rebuild the tree every k steps (tree reuse for k>1)")
		leafSize  = flag.Int("leaf-size", 1, "BVH bodies per leaf")
		ordering  = flag.String("ordering", "hilbert", "BVH body ordering: hilbert, morton")
		quad      = flag.Bool("quadrupole", false, "octree: use quadrupole moments")
		gather    = flag.Bool("gather-moments", false, "octree: gather-variant multipole reduction")
		diagEach  = flag.Int("diag-every", 0, "print diagnostics every k steps (0 = only at start/end)")
		exact     = flag.Bool("exact-energy", false, "use the O(N²) potential for diagnostics")
		tracePath = flag.String("trace", "", "write per-step diagnostics CSV to this file (samples at -diag-every)")
		snapPath  = flag.String("snapshot", "", "write a final body snapshot CSV to this file")
		savePath  = flag.String("save", "", "write a binary checkpoint of the final state to this file")
		loadPath  = flag.String("load", "", "resume from a binary checkpoint instead of generating a workload")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	sched, err := parseScheduler(*schedStr)
	if err != nil {
		return err
	}
	ord := bvh.Hilbert
	switch *ordering {
	case "hilbert":
	case "morton":
		ord = bvh.Morton
	default:
		return fmt.Errorf("unknown ordering %q", *ordering)
	}

	var sys *body.System
	startStep := 0
	if *loadPath != "" {
		var meta snapshot.Meta
		sys, meta, err = snapshot.Load(*loadPath)
		if err != nil {
			return err
		}
		startStep = meta.Step
		fmt.Printf("resumed %d bodies from %s (step %d, t=%g)\n", sys.N(), *loadPath, meta.Step, meta.Time)
	} else {
		sys, err = workload.ByName(*wlName, *n, *seed)
		if err != nil {
			return err
		}
	}

	cfg := core.Config{
		Algorithm:    alg,
		Params:       grav.Params{G: *g, Eps: *eps, Theta: *theta},
		DT:           *dt,
		Runtime:      par.NewRuntime(*workers, sched),
		Sequential:   *seq,
		RebuildEvery: *rebuild,
		Octree:       octree.Config{GatherMoments: *gather, Quadrupole: *quad},
		BVH:          bvh.Config{LeafSize: *leafSize, Ordering: ord},
	}
	sim, err := core.New(cfg, sys)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm=%v workload=%s n=%d steps=%d dt=%g θ=%g ε=%g G=%g workers=%d sched=%v seq=%v\n\n",
		alg, *wlName, sys.N(), *steps, *dt, *theta, *eps, *g, cfg.Runtime.Workers(), sched, *seq)

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(*dt)
		rec.Record(sim, *exact)
	}

	d0 := sim.Diagnostics(*exact)
	printDiag("initial", d0)

	// Ctrl-C / SIGTERM cancels the run at the next step boundary instead of
	// killing the process: the loop exits cleanly and the trace, snapshot
	// and checkpoint outputs below are still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	stepsDone := 0
	for s := 1; s <= *steps; s++ {
		if err := sim.RunContext(ctx, 1); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "\ninterrupted after %d steps; writing outputs\n", stepsDone)
				break
			}
			return err
		}
		stepsDone = s
		if *diagEach > 0 && s%*diagEach == 0 {
			printDiag(fmt.Sprintf("step %d", s), sim.Diagnostics(*exact))
			if rec != nil {
				rec.Record(sim, *exact)
			}
		}
	}
	elapsed := time.Since(start)

	if rec != nil {
		rec.Record(sim, *exact)
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote diagnostics trace to %s (max energy drift %.3e)\n", *tracePath, rec.EnergyDrift())
	}
	if *savePath != "" {
		meta := snapshot.Meta{Step: startStep + stepsDone, Time: float64(startStep+stepsDone) * *dt}
		if err := snapshot.Save(*savePath, sys, meta); err != nil {
			return err
		}
		fmt.Printf("wrote checkpoint to %s (step %d)\n", *savePath, meta.Step)
	}
	if *snapPath != "" {
		f, err := os.Create(*snapPath)
		if err != nil {
			return err
		}
		if err := trace.WriteSnapshotCSV(f, stepsDone, sys); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote final snapshot to %s\n", *snapPath)
	}

	d1 := sim.Diagnostics(*exact)
	printDiag("final", d1)
	fmt.Printf("\nenergy drift: %.3e (relative)\n", relDrift(d1.TotalEnergy, d0.TotalEnergy))
	fmt.Printf("mass drift:   %.3e (relative)\n\n", relDrift(d1.Mass, d0.Mass))

	fmt.Println("phase breakdown:")
	fmt.Println(sim.Breakdown())
	fmt.Printf("\nthroughput: %.3e bodies·steps/s (%v per step)\n",
		metrics.Throughput(sys.N(), stepsDone, elapsed), (elapsed / time.Duration(max(stepsDone, 1))).Round(time.Microsecond))
	return nil
}

func parseScheduler(s string) (par.Scheduler, error) {
	switch s {
	case "dynamic":
		return par.Dynamic, nil
	case "static":
		return par.Static, nil
	case "guided":
		return par.Guided, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}

func printDiag(label string, d core.Diagnostics) {
	fmt.Printf("%-8s E=%+.6e (K=%.4e U=%+.4e)  |p|=%.3e  M=%.6e\n",
		label, d.TotalEnergy, d.KineticEnergy, d.Potential, d.Momentum.Norm(), d.Mass)
}

func relDrift(now, was float64) float64 {
	if was == 0 {
		return 0
	}
	return abs(now-was) / abs(was)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
