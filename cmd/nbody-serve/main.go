// Command nbody-serve runs the simulation service: many independent N-body
// sessions multiplexed over one machine behind a JSON HTTP API, with
// admission control, streaming diagnostics and graceful drain on SIGTERM.
//
// Examples:
//
//	nbody-serve -addr :8080 -max-sessions 64 -max-bodies 1000000 -idle-ttl 10m
//	curl -s localhost:8080/v1/sessions -d '{"workload":"galaxy","n":10000,"dt":1e-3}'
//	curl -s localhost:8080/v1/sessions/s-1/step -d '{"steps":100}'
//	curl -s localhost:8080/metrics   # Prometheus exposition
//
// See the README "Serving" section for the full API walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"nbody/internal/jobs"
	"nbody/internal/obs"
	"nbody/internal/par"
	"nbody/internal/serve"
	"nbody/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nbody-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", 64, "maximum live sessions (admission limit)")
		maxBodies   = flag.Int("max-bodies", 1_000_000, "maximum bodies per session")
		idleTTL     = flag.Duration("idle-ttl", 10*time.Minute, "idle session eviction age")
		stepSlots   = flag.Int("step-slots", 2, "sessions stepping concurrently")
		maxQueue    = flag.Int("max-queue", 0, "step requests allowed to wait for a slot (0 = step-slots)")
		maxSteps    = flag.Int("max-steps-per-request", 10_000, "per-request step budget")
		execWorkers = flag.Int("exec-workers", 0, "phase-graph executor pool size for pipelined sessions (0 = step-slots)")
		workers     = flag.Int("workers", 0, "total worker goroutines across all slots (0 = GOMAXPROCS)")
		schedStr    = flag.String("sched", "dynamic", "scheduler: dynamic, static, guided")
		drain       = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")
		stateDir    = flag.String("state-dir", "", "checkpoint directory for crash-safe session durability (empty = in-memory only)")
		ckptEvery   = flag.Int("checkpoint-every", 500, "also checkpoint mid-run every N steps (0 = only at request end; needs -state-dir)")
		maxDrift    = flag.Float64("max-energy-drift", 0, "quarantine a session whose relative energy drift exceeds this (0 = disabled)")
		debugAddr   = flag.String("debug-addr", "", "listen address for the debug mux (pprof + span ring); empty = disabled")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		jobWorkers  = flag.Int("job-workers", 2, "batch job worker pool size (0 = disable the /v1/jobs API)")
		jobQueue    = flag.Int("job-queue", 64, "batch jobs allowed to wait across all priority classes")
		jobRetries  = flag.Int("job-retries", 3, "transient-fault retries per batch job between successful chunks")
		jobChunk    = flag.Int("job-chunk", 500, "batch job checkpoint chunk size in steps")
		jobChunkTO  = flag.Duration("job-chunk-timeout", 0, "watchdog: a single batch-job chunk exceeding this is aborted and retried as a transient fault (0 = disabled)")
		shardID     = flag.String("shard-id", "", "replica name in a sharded deployment (echoed as X-NBody-Shard, prefixes minted IDs)")
		tenantsFile = flag.String("tenants", "", "tenant keyfile (JSON array of {name, key, quotas}); non-empty turns on multi-tenant mode: bearer-token auth on /v1, per-tenant quotas and fair queueing")
	)
	flag.Parse()

	// Reject nonsense before it turns into a confusing runtime state.
	if *addr == "" {
		return errors.New("-addr must not be empty")
	}
	if *maxSessions <= 0 {
		return fmt.Errorf("-max-sessions must be > 0 (got %d)", *maxSessions)
	}
	if *maxBodies <= 0 {
		return fmt.Errorf("-max-bodies must be > 0 (got %d)", *maxBodies)
	}
	if *idleTTL <= 0 {
		return fmt.Errorf("-idle-ttl must be > 0 (got %v)", *idleTTL)
	}
	if *stepSlots <= 0 {
		return fmt.Errorf("-step-slots must be > 0 (got %d)", *stepSlots)
	}
	if *maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0 (got %d)", *maxQueue)
	}
	if *maxSteps <= 0 {
		return fmt.Errorf("-max-steps-per-request must be > 0 (got %d)", *maxSteps)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", *workers)
	}
	if *drain <= 0 {
		return fmt.Errorf("-drain-timeout must be > 0 (got %v)", *drain)
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", *ckptEvery)
	}
	if *maxDrift < 0 {
		return fmt.Errorf("-max-energy-drift must be >= 0 (got %g)", *maxDrift)
	}
	if *jobWorkers < 0 {
		return fmt.Errorf("-job-workers must be >= 0 (got %d)", *jobWorkers)
	}
	if *jobQueue <= 0 {
		return fmt.Errorf("-job-queue must be > 0 (got %d)", *jobQueue)
	}
	if *jobRetries < 0 {
		return fmt.Errorf("-job-retries must be >= 0 (got %d)", *jobRetries)
	}
	if *jobChunk <= 0 || *jobChunk > *maxSteps {
		return fmt.Errorf("-job-chunk must be in [1, -max-steps-per-request] (got %d)", *jobChunk)
	}
	sched, err := parseScheduler(*schedStr)
	if err != nil {
		return err
	}

	var tenants []serve.Tenant
	if *tenantsFile != "" {
		if tenants, err = serve.LoadTenants(*tenantsFile); err != nil {
			return err
		}
	}

	ob, err := obs.NewObserver(os.Stderr, *logFormat, obs.DefaultTraceCapacity)
	if err != nil {
		return err
	}

	var st *store.Store
	if *stateDir != "" {
		if st, err = store.Open(*stateDir); err != nil {
			return err
		}
	}

	// Divide the machine between the stepping slots: each concurrently
	// stepping session gets total/slots workers so the slots together
	// saturate — but do not oversubscribe — the runtime's capacity.
	total := par.NewRuntime(*workers, sched).Workers()
	perSession := total / *stepSlots
	if perSession < 1 {
		perSession = 1
	}

	m, err := serve.NewManager(serve.Config{
		MaxSessions:        *maxSessions,
		MaxBodies:          *maxBodies,
		IdleTTL:            *idleTTL,
		StepSlots:          *stepSlots,
		MaxQueue:           *maxQueue,
		MaxStepsPerRequest: *maxSteps,
		ExecWorkers:        *execWorkers,
		Runtime:            par.NewRuntime(perSession, sched),
		Store:              st,
		CheckpointEvery:    *ckptEvery,
		MaxEnergyDrift:     *maxDrift,
		Obs:                ob,
		ShardID:            *shardID,
		Tenants:            tenants,
	})
	if err != nil {
		return err
	}
	if st != nil {
		snap := m.Metrics()
		log.Printf("state dir %s: recovered %d session(s), quarantined %d corrupt checkpoint(s)",
			st.Dir(), snap.RecoveredTotal, snap.QuarantinedTotal)
	}

	// The batch job queue rides on the session manager. Job records are
	// durable only when sessions are (-state-dir), living in the jobs/
	// subdirectory so the session recovery scan never sees them.
	var jm *jobs.Manager
	if *jobWorkers > 0 {
		var js *store.JobStore
		if *stateDir != "" {
			if js, err = store.OpenJobs(filepath.Join(*stateDir, "jobs")); err != nil {
				return err
			}
		}
		retries := *jobRetries
		if retries == 0 {
			retries = -1 // the Config sentinel: 0 means default, negative disables
		}
		// The keyfile's queued-job quotas carry into the job queue; tenants
		// without one are still declared (quota 0 = unlimited) so their
		// metric series exist from boot.
		var tenantQueues map[string]int
		if len(tenants) > 0 {
			tenantQueues = make(map[string]int, len(tenants))
			for _, t := range tenants {
				tenantQueues[t.Name] = t.MaxQueuedJobs
			}
		}
		jm, err = jobs.NewManager(jobs.Config{
			Runner:       serve.NewJobRunner(m),
			Workers:      *jobWorkers,
			MaxQueue:     *jobQueue,
			TenantQueues: tenantQueues,
			MaxRetries:   retries,
			ChunkSteps:   *jobChunk,
			ChunkTimeout: *jobChunkTO,
			Store:        js,
			Obs:          ob,
			ShardID:      *shardID,
		})
		if err != nil {
			return err
		}
		snap := jm.Snapshot()
		log.Printf("job queue: %d worker(s), queue %d, chunk %d steps, %d record(s) recovered (%d queued)",
			*jobWorkers, *jobQueue, *jobChunk, snap.Records, snap.Queued)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandlerWithJobs(m, jm),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(ob.Tracer),
			ReadHeaderTimeout: 10 * time.Second,
		}
		// The debug listener is best-effort: a failure there (port taken,
		// listener dies) must not take the service down with it.
		go func() {
			if err := dbg.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("debug mux (pprof, /debug/trace) on %s", *debugAddr)
	}
	if len(tenants) > 0 {
		log.Printf("multi-tenant mode: %d tenant(s) from %s", len(tenants), *tenantsFile)
	}
	log.Printf("listening on %s (max-sessions %d, max-bodies %d, idle-ttl %v, %d slots × %d workers)",
		*addr, *maxSessions, *maxBodies, *idleTTL, *stepSlots, perSession)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: cancel every in-flight run at its next step
	// boundary, then let the HTTP server finish writing responses. A
	// blown drain deadline means sessions may not have reached their
	// final checkpoint — that must be visible in the log AND the exit
	// code, or supervisors treat a lossy shutdown as a clean one.
	log.Printf("signal received, draining (budget %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: drain the job pool first so running jobs checkpoint
	// at a chunk boundary and requeue through their durable records, then
	// drain the session manager, which commits the final checkpoints those
	// jobs will resume from.
	var drainErr error
	if jm != nil {
		if err := jm.Close(dctx); err != nil {
			log.Printf("job drain: %v", err)
			drainErr = err
		}
	}
	if err := m.Close(dctx); err != nil {
		log.Printf("drain: %v", err)
		drainErr = err
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("drained cleanly")
	return nil
}

func parseScheduler(s string) (par.Scheduler, error) {
	switch s {
	case "dynamic":
		return par.Dynamic, nil
	case "static":
		return par.Static, nil
	case "guided":
		return par.Guided, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}
