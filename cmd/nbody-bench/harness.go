package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nbody/internal/body"
	"nbody/internal/core"
	"nbody/internal/metrics"
	"nbody/internal/par"
	"nbody/internal/workload"
)

// common holds the flags every subcommand shares.
type common struct {
	steps   *int
	repeats *int
	workers *int
	seed    *uint64
	csv     *bool
	svg     *string
	layout  *string
}

func addCommon(fs *flag.FlagSet, defaultSteps int) *common {
	return &common{
		steps:   fs.Int("steps", defaultSteps, "timed steps per measurement"),
		repeats: fs.Int("repeats", 3, "take the best of this many repeats"),
		workers: fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)"),
		seed:    fs.Uint64("seed", 42, "workload seed"),
		csv:     fs.Bool("csv", false, "emit CSV instead of an aligned table"),
		svg:     fs.String("svg", "", "additionally render the figure as SVG to this file"),
		layout:  fs.String("layout", "flat", "force-evaluation layout: flat (interaction lists) or walk (per-body)"),
	}
}

// coreLayout parses the -layout flag.
func (c *common) coreLayout() (core.Layout, error) { return core.ParseLayout(*c.layout) }

// parseAlgs resolves a comma-separated -algs value, or def when empty.
func parseAlgs(spec string, def []core.Algorithm) ([]core.Algorithm, error) {
	if spec == "" {
		return def, nil
	}
	var out []core.Algorithm
	for _, name := range strings.Split(spec, ",") {
		a, err := core.ParseAlgorithm(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// writeSVG renders a chart to the -svg path if one was given.
func (c *common) writeSVG(render func(w io.Writer) error) error {
	if *c.svg == "" {
		return nil
	}
	f, err := os.Create(*c.svg)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", *c.svg)
	return nil
}

// render prints tb as a table or CSV per the -csv flag.
func (c *common) render(tb *metrics.Table) {
	if *c.csv {
		tb.RenderCSV(os.Stdout)
	} else {
		tb.Render(os.Stdout)
	}
}

// galaxyDT resolves the innermost disk orbits of the galaxy workload.
const galaxyDT = 1e-5

// measurement is one benchmark data point.
type measurement struct {
	throughput float64 // bodies·steps/s, best repeat
	perStep    time.Duration
	breakdown  metrics.Breakdown // from the best repeat
}

// measure times `steps` simulation steps of cfg on a clone of base, taking
// the best of `repeats`. The first step of each repeat (initial force
// computation, pool sizing) is excluded as warm-up.
func measure(cfg core.Config, base *body.System, steps, repeats int) (measurement, error) {
	var best measurement
	for rep := 0; rep < repeats; rep++ {
		sim, err := core.New(cfg, base.Clone())
		if err != nil {
			return measurement{}, err
		}
		if err := sim.Step(); err != nil {
			return measurement{}, err
		}
		sim.Breakdown().Reset()

		start := time.Now()
		if err := sim.Run(steps); err != nil {
			return measurement{}, err
		}
		elapsed := time.Since(start)

		tp := metrics.Throughput(base.N(), steps, elapsed)
		if tp > best.throughput {
			best.throughput = tp
			best.perStep = elapsed / time.Duration(steps)
			best.breakdown = *sim.Breakdown()
		}
	}
	return best, nil
}

// galaxySystem builds (once) the paper's galaxy-collision workload.
func galaxySystem(n int, seed uint64) *body.System {
	return workload.GalaxyCollision(n, seed)
}

// runtimeFor builds the runtime a subcommand's flags selected.
func (c *common) runtime(sched par.Scheduler) *par.Runtime {
	return par.NewRuntime(*c.workers, sched)
}

// header prints an experiment banner.
func header(format string, args ...any) {
	fmt.Printf(format+"\n\n", args...)
}
