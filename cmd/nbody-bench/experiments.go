package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"time"

	"nbody/internal/bvh"
	"nbody/internal/core"
	"nbody/internal/grav"
	"nbody/internal/kdtree"
	"nbody/internal/metrics"
	"nbody/internal/octree"
	"nbody/internal/par"
	"nbody/internal/plot"
	"nbody/internal/stream"
	"nbody/internal/workload"
)

// runTable1 reproduces the validation column of Table I: BabelStream
// bandwidths for the Go runtime on this host, sequential and parallel.
func runTable1(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 0)
	n := fs.Int("n", stream.DefaultN, "array length in float64 elements")
	iters := fs.Int("iters", 15, "timed iterations per kernel")
	if err := fs.Parse(args); err != nil {
		return err
	}

	header("Table I analog — BabelStream kernels, %d elements/array (%.0f MiB)", *n, float64(*n)*8/(1<<20))
	tb := metrics.NewTable("policy", "kernel", "GB/s", "best", "verified")
	for _, mode := range []struct {
		name string
		pol  par.Policy
		rt   *par.Runtime
	}{
		{"seq", par.Seq, par.NewRuntime(1, par.Dynamic)},
		{"par_unseq", par.ParUnseq, c.runtime(par.Dynamic)},
	} {
		for _, res := range stream.Benchmark(mode.rt, mode.pol, *n, *iters) {
			tb.AddRow(mode.name, res.Kernel, res.GBps, res.Best.Round(time.Microsecond).String(), res.Checked)
		}
	}
	c.render(tb)
	return nil
}

// runFig5 reproduces Figure 5: single-core sequential vs parallel
// throughput for the tiny (10⁴) galaxy workload, all four algorithms.
func runFig5(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 10)
	n := fs.Int("n", 10_000, "number of bodies")
	algsFlag := fs.String("algs", "", "comma-separated algorithms to run (default: the paper's four)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lay, err := c.coreLayout()
	if err != nil {
		return err
	}
	algs, err := parseAlgs(*algsFlag, core.Algorithms())
	if err != nil {
		return err
	}

	header("Figure 5 — sequential vs parallel throughput, galaxy (n=%d, layout=%v)", *n, lay)
	base := galaxySystem(*n, *c.seed)
	tb := metrics.NewTable("algorithm", "mode", "bodies/s", "ms/step", "speedup")
	var groups []plot.BarGroup

	for _, alg := range algs {
		var seqTP float64
		group := plot.BarGroup{Label: alg.String()}
		for _, seq := range []bool{true, false} {
			cfg := core.Config{Algorithm: alg, DT: galaxyDT, Sequential: seq, Layout: lay, Runtime: c.runtime(par.Dynamic)}
			m, err := measure(cfg, base, *c.steps, *c.repeats)
			if err != nil {
				return err
			}
			mode := "par"
			speedup := m.throughput / seqTP
			if seq {
				mode, seqTP, speedup = "seq", m.throughput, 1
			}
			group.Values = append(group.Values, m.throughput)
			tb.AddRow(alg.String(), mode, m.throughput, float64(m.perStep.Microseconds())/1000, speedup)
		}
		groups = append(groups, group)
	}
	c.render(tb)
	return c.writeSVG(func(w io.Writer) error {
		return plot.GroupedBars(w, fmt.Sprintf("Figure 5 — seq vs parallel, n=%d galaxy", *n),
			"bodies·steps/s", []string{"seq", "par"}, groups)
	})
}

// runFig6 reproduces Figure 6: algorithm throughput for the small (10⁵)
// galaxy workload.
func runFig6(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 5)
	n := fs.Int("n", 100_000, "number of bodies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return throughputFigure(c, *n, core.Algorithms(), "Figure 6 — algorithm throughput, small galaxy (n=%d)")
}

// runFig7 reproduces Figure 7: algorithm throughput for the mid (10⁶)
// galaxy workload. The O(N²) baselines need ~10¹² pair evaluations per step
// at this size, so they are opt-in via -allpairs.
func runFig7(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 3)
	n := fs.Int("n", 1_000_000, "number of bodies")
	withAllPairs := fs.Bool("allpairs", false, "include the O(N²) baselines (very slow at 10⁶)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	algs := []core.Algorithm{core.Octree, core.BVH}
	if *withAllPairs {
		algs = core.Algorithms()
	}
	return throughputFigure(c, *n, algs, "Figure 7 — algorithm throughput, mid galaxy (n=%d)")
}

func throughputFigure(c *common, n int, algs []core.Algorithm, banner string) error {
	lay, err := c.coreLayout()
	if err != nil {
		return err
	}
	header(banner, n)
	base := galaxySystem(n, *c.seed)
	tb := metrics.NewTable("algorithm", "bodies/s", "ms/step")
	var names []string
	group := plot.BarGroup{Label: fmt.Sprintf("n=%d", n)}
	for _, alg := range algs {
		cfg := core.Config{Algorithm: alg, DT: galaxyDT, Layout: lay, Runtime: c.runtime(par.Dynamic)}
		m, err := measure(cfg, base, *c.steps, *c.repeats)
		if err != nil {
			return err
		}
		names = append(names, alg.String())
		group.Values = append(group.Values, m.throughput)
		tb.AddRow(alg.String(), m.throughput, float64(m.perStep.Microseconds())/1000)
	}
	c.render(tb)
	return c.writeSVG(func(w io.Writer) error {
		return plot.GroupedBars(w, fmt.Sprintf(banner, n), "bodies·steps/s", names, []plot.BarGroup{group})
	})
}

// runFig8 reproduces Figure 8: the relative execution time of the non-force
// phases for octree and BVH, across the three schedulers (the reproduction's
// stand-in for the paper's three toolchains).
func runFig8(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 5)
	n := fs.Int("n", 100_000, "number of bodies")
	if err := fs.Parse(args); err != nil {
		return err
	}

	header("Figure 8 — relative time of non-force phases, small galaxy (n=%d)\n(force phase excluded, as in the paper)", *n)
	base := galaxySystem(*n, *c.seed)
	tb := metrics.NewTable("algorithm", "scheduler", "bbox%", "sort%", "build%", "multipoles%", "update%", "force ms/step")
	segments := []metrics.Phase{metrics.PhaseBoundingBox, metrics.PhaseSort, metrics.PhaseBuild, metrics.PhaseMultipoles, metrics.PhaseUpdate}
	var groups []plot.BarGroup

	for _, alg := range []core.Algorithm{core.Octree, core.BVH} {
		for _, sched := range []par.Scheduler{par.Dynamic, par.Static, par.Guided} {
			cfg := core.Config{Algorithm: alg, DT: galaxyDT, Runtime: c.runtime(sched)}
			m, err := measure(cfg, base, *c.steps, *c.repeats)
			if err != nil {
				return err
			}
			bd := &m.breakdown
			pct := func(p metrics.Phase) float64 { return 100 * bd.FractionExcludingForce(p) }
			forceMS := float64(bd.Elapsed(metrics.PhaseForce).Microseconds()) / 1000 / float64(*c.steps)
			tb.AddRow(alg.String(), sched.String(),
				pct(metrics.PhaseBoundingBox), pct(metrics.PhaseSort), pct(metrics.PhaseBuild),
				pct(metrics.PhaseMultipoles), pct(metrics.PhaseUpdate), forceMS)

			group := plot.BarGroup{Label: fmt.Sprintf("%s/%s", alg, sched)}
			for _, p := range segments {
				group.Values = append(group.Values, bd.FractionExcludingForce(p))
			}
			groups = append(groups, group)
		}
	}
	c.render(tb)
	return c.writeSVG(func(w io.Writer) error {
		names := make([]string, len(segments))
		for i, p := range segments {
			names[i] = p.String()
		}
		return plot.StackedBars(w, fmt.Sprintf("Figure 8 — non-force phase shares, n=%d", *n), names, groups)
	})
}

// runFig9 reproduces Figure 9: throughput vs problem size for two runtime
// implementations (dynamic vs static scheduling as the two "toolchains").
func runFig9(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 3)
	if err := fs.Parse(args); err != nil {
		return err
	}

	header("Figure 9 — throughput vs N, two schedulers (toolchain analog)")
	tb := metrics.NewTable("algorithm", "scheduler", "n", "bodies/s")
	series := map[string]*plot.Series{}
	var seriesOrder []string
	for _, n := range []int{10_000, 31_623, 100_000, 316_228, 1_000_000} {
		base := galaxySystem(n, *c.seed)
		for _, alg := range []core.Algorithm{core.Octree, core.BVH} {
			for _, sched := range []par.Scheduler{par.Dynamic, par.Static} {
				cfg := core.Config{Algorithm: alg, DT: galaxyDT, Runtime: c.runtime(sched)}
				m, err := measure(cfg, base, *c.steps, *c.repeats)
				if err != nil {
					return err
				}
				tb.AddRow(alg.String(), sched.String(), n, m.throughput)
				key := fmt.Sprintf("%s/%s", alg, sched)
				se, ok := series[key]
				if !ok {
					se = &plot.Series{Name: key}
					series[key] = se
					seriesOrder = append(seriesOrder, key)
				}
				se.X = append(se.X, float64(n))
				se.Y = append(se.Y, m.throughput)
			}
		}
	}
	c.render(tb)
	return c.writeSVG(func(w io.Writer) error {
		out := make([]plot.Series, 0, len(seriesOrder))
		for _, k := range seriesOrder {
			out = append(out, *series[k])
		}
		return plot.LogLogLines(w, "Figure 9 — throughput vs N", "bodies", "bodies·steps/s", out)
	})
}

// runValidate reproduces the Section V-A validation: simulate the synthetic
// solar-system catalogue for one day at a one-hour timestep with every
// implementation and report the pairwise L2 error of final positions plus
// the Octree:BVH performance ratio. The paper's full scale is
// -n 1039551 (with the exact all-pairs reference limited to smaller n).
func runValidate(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 24)
	n := fs.Int("n", 20_000, "number of bodies (paper: 1039551)")
	exactMax := fs.Int("exact-max", 50_000, "largest n for which the O(N²) reference runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	const dt = 1.0 / 24 // one hour in days
	params := grav.Params{G: workload.GSolar, Eps: 0, Theta: 0.5}
	header("Validation (Section V-A) — %d solar-system bodies, %d steps of dt=1h", *n, *c.steps)

	type result struct {
		pos     [][3]float64
		elapsed time.Duration
	}
	runOne := func(alg core.Algorithm) (result, error) {
		sys := workload.SolarSystemBelt(*n, *c.seed)
		sim, err := core.New(core.Config{Algorithm: alg, DT: dt, Params: params, Runtime: c.runtime(par.Dynamic)}, sys)
		if err != nil {
			return result{}, err
		}
		start := time.Now()
		if err := sim.Run(*c.steps); err != nil {
			return result{}, err
		}
		elapsed := time.Since(start)
		pos := make([][3]float64, *n)
		for i := 0; i < *n; i++ {
			pos[sys.ID[i]] = [3]float64{sys.PosX[i], sys.PosY[i], sys.PosZ[i]}
		}
		return result{pos, elapsed}, nil
	}

	algs := []core.Algorithm{core.Octree, core.BVH}
	if *n <= *exactMax {
		algs = append(algs, core.AllPairs)
	} else {
		fmt.Printf("(n > %d: skipping the O(N²) reference; comparing octree vs bvh)\n\n", *exactMax)
	}

	results := map[core.Algorithm]result{}
	for _, alg := range algs {
		r, err := runOne(alg)
		if err != nil {
			return err
		}
		results[alg] = r
	}

	l2 := func(a, b [][3]float64) float64 {
		var sum2 float64
		for i := range a {
			for k := 0; k < 3; k++ {
				d := a[i][k] - b[i][k]
				sum2 += d * d
			}
		}
		return math.Sqrt(sum2 / float64(len(a)))
	}

	tb := metrics.NewTable("pair", "RMS L2 error [AU]", "< 1e-6")
	for i := 0; i < len(algs); i++ {
		for j := i + 1; j < len(algs); j++ {
			e := l2(results[algs[i]].pos, results[algs[j]].pos)
			tb.AddRow(fmt.Sprintf("%v vs %v", algs[i], algs[j]), e, e < 1e-6)
		}
	}
	c.render(tb)

	fmt.Println()
	tp := metrics.NewTable("algorithm", "total time", "bodies/s")
	for _, alg := range algs {
		tp.AddRow(alg.String(), results[alg].elapsed.Round(time.Millisecond).String(),
			metrics.Throughput(*n, *c.steps, results[alg].elapsed))
	}
	c.render(tp)
	ratio := results[core.BVH].elapsed.Seconds() / results[core.Octree].elapsed.Seconds()
	fmt.Printf("\nOctree outperforms BVH by %.2fx (paper: 3.3x on H100)\n", ratio)
	return nil
}

// runAblate measures the design-choice ablations DESIGN.md calls out.
func runAblate(fs *flag.FlagSet, args []string) error {
	c := addCommon(fs, 5)
	n := fs.Int("n", 100_000, "number of bodies")
	if err := fs.Parse(args); err != nil {
		return err
	}

	header("Ablations — galaxy workload (n=%d)", *n)
	base := galaxySystem(*n, *c.seed)
	rt := c.runtime(par.Dynamic)
	tb := metrics.NewTable("ablation", "variant", "bodies/s", "ms/step")

	add := func(group, variant string, cfg core.Config) error {
		cfg.DT = galaxyDT
		cfg.Runtime = rt
		m, err := measure(cfg, base, *c.steps, *c.repeats)
		if err != nil {
			return err
		}
		tb.AddRow(group, variant, m.throughput, float64(m.perStep.Microseconds())/1000)
		return nil
	}

	steps := []struct {
		group, variant string
		cfg            core.Config
	}{
		{"structure", "octree (paper)", core.Config{Algorithm: core.Octree}},
		{"structure", "bvh (paper)", core.Config{Algorithm: core.BVH}},
		{"structure", "kdtree (extension)", core.Config{Algorithm: core.KDTree}},
		{"structure", "kdtree dual-tree (extension)", core.Config{Algorithm: core.KDTree, KD: kdtree.Config{Dual: true}}},
		{"criterion", "center-distance (paper)", core.Config{Algorithm: core.BVH}},
		{"criterion", "box-distance", core.Config{Algorithm: core.BVH, BVH: bvh.Config{Criterion: bvh.BoxDistance}}},
		{"moments", "scatter (paper)", core.Config{Algorithm: core.Octree}},
		{"moments", "gather", core.Config{Algorithm: core.Octree, Octree: octree.Config{GatherMoments: true}}},
		// Walk layout pinned: under the flat default the octree presorts
		// unconditionally and always uses the list kernel, which would
		// collapse these variants into one.
		{"presort", "unsorted insert (paper)", core.Config{Algorithm: core.Octree, Layout: core.LayoutWalk}},
		{"presort", "morton presort", core.Config{Algorithm: core.Octree, Layout: core.LayoutWalk, Octree: octree.Config{PresortMorton: true}}},
		{"traversal", "per-body (paper)", core.Config{Algorithm: core.Octree, Layout: core.LayoutWalk, Octree: octree.Config{PresortMorton: true}}},
		{"traversal", "grouped (32)", core.Config{Algorithm: core.Octree, Layout: core.LayoutWalk, Octree: octree.Config{PresortMorton: true, GroupSize: 32}}},
		{"traversal", "flat list (32)", core.Config{Algorithm: core.Octree}},
		{"layout", "walk (paper)", core.Config{Algorithm: core.Octree, Layout: core.LayoutWalk, Octree: octree.Config{PresortMorton: true}}},
		{"layout", "flat lists (octree)", core.Config{Algorithm: core.Octree}},
		{"layout", "walk (bvh)", core.Config{Algorithm: core.BVH, Layout: core.LayoutWalk}},
		{"layout", "flat lists (bvh)", core.Config{Algorithm: core.BVH}},
		{"bvh-leaf", "1", core.Config{Algorithm: core.BVH, BVH: bvh.Config{LeafSize: 1}}},
		{"bvh-leaf", "4", core.Config{Algorithm: core.BVH, BVH: bvh.Config{LeafSize: 4}}},
		{"bvh-leaf", "16", core.Config{Algorithm: core.BVH, BVH: bvh.Config{LeafSize: 16}}},
		{"ordering", "hilbert (paper)", core.Config{Algorithm: core.BVH}},
		{"ordering", "morton", core.Config{Algorithm: core.BVH, BVH: bvh.Config{Ordering: bvh.Morton}}},
		{"moments-order", "monopole (paper)", core.Config{Algorithm: core.Octree}},
		{"moments-order", "quadrupole", core.Config{Algorithm: core.Octree, Octree: octree.Config{Quadrupole: true}}},
		{"tree-reuse", "rebuild every step (paper)", core.Config{Algorithm: core.Octree}},
		{"tree-reuse", "rebuild every 4 (octree)", core.Config{Algorithm: core.Octree, RebuildEvery: 4}},
		{"tree-reuse", "rebuild every 4 (bvh)", core.Config{Algorithm: core.BVH, RebuildEvery: 4}},
		{"tree-reuse", "refit thresh 0.02 (octree)", core.Config{Algorithm: core.Octree, RefitThreshold: 0.02}},
		{"tree-reuse", "refit thresh 0.02 (bvh)", core.Config{Algorithm: core.BVH, RefitThreshold: 0.02}},
	}
	for _, s := range steps {
		if err := add(s.group, s.variant, s.cfg); err != nil {
			return err
		}
	}

	for _, theta := range []float64{0.3, 0.5, 0.8} {
		for _, alg := range []core.Algorithm{core.Octree, core.BVH} {
			p := grav.DefaultParams()
			p.Theta = theta
			if err := add("theta", fmt.Sprintf("θ=%g (%v)", theta, alg), core.Config{Algorithm: alg, Params: p}); err != nil {
				return err
			}
		}
	}

	c.render(tb)
	return nil
}
