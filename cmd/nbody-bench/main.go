// Command nbody-bench regenerates the data behind every table and figure of
// the paper's evaluation (Section V) on the host machine, printing the same
// rows/series each artifact plots. See EXPERIMENTS.md for the mapping and
// the paper-vs-measured discussion.
//
// Subcommands:
//
//	table1    BabelStream bandwidth validation (Table I)
//	fig5      sequential vs parallel throughput, 10⁴ bodies (Figure 5)
//	fig6      algorithm throughput, 10⁵ bodies (Figure 6)
//	fig7      algorithm throughput, 10⁶ bodies (Figure 7)
//	fig8      per-phase time breakdown across schedulers (Figure 8)
//	fig9      throughput vs N for two schedulers (Figure 9)
//	validate  cross-implementation L2 validation on the solar-system
//	          workload (Section V-A)
//	ablate    ablations of the design choices called out in DESIGN.md
//	all       run everything above in order
//
// Common flags (each subcommand also accepts them):
//
//	-steps k     timed steps per measurement (default varies by size)
//	-repeats r   take the best of r repeats (default 3)
//	-workers w   worker goroutines (0 = GOMAXPROCS)
//	-seed s      workload seed (default 42)
//	-csv         emit CSV instead of an aligned table
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	experiments := map[string]func(*flag.FlagSet, []string) error{
		"table1":   runTable1,
		"fig5":     runFig5,
		"fig6":     runFig6,
		"fig7":     runFig7,
		"fig8":     runFig8,
		"fig9":     runFig9,
		"validate": runValidate,
		"ablate":   runAblate,
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "validate", "ablate"} {
			fmt.Printf("==== %s ====\n", name)
			fs := flag.NewFlagSet(name, flag.ExitOnError)
			if err := experiments[name](fs, args); err != nil {
				fmt.Fprintf(os.Stderr, "nbody-bench %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}

	run, ok := experiments[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "nbody-bench: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	if err := run(fs, args); err != nil {
		fmt.Fprintf(os.Stderr, "nbody-bench %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nbody-bench <subcommand> [flags]

subcommands:
  table1    BabelStream bandwidth validation (Table I)
  fig5      sequential vs parallel throughput, 10^4 bodies (Figure 5)
  fig6      algorithm throughput, 10^5 bodies (Figure 6)
  fig7      algorithm throughput, 10^6 bodies (Figure 7)
  fig8      per-phase time breakdown across schedulers (Figure 8)
  fig9      throughput vs N for two schedulers (Figure 9)
  validate  cross-implementation L2 validation (Section V-A)
  ablate    design-choice ablations
  all       run everything

run 'nbody-bench <subcommand> -h' for flags`)
}
