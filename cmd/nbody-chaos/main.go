// Command nbody-chaos runs a fault-injecting reverse proxy in front of
// one nbody-serve replica, for resilience testing: drop it between the
// router and a shard, then script network faults against the pair
// through its /_chaos/ control API while the stack serves real traffic.
//
//	nbody-serve -addr :8081 -shard-id a &
//	nbody-chaos -addr :9081 -target http://127.0.0.1:8081 &
//	nbody-router -addr :8080 -shard a=http://127.0.0.1:9081 ...
//
//	curl -X POST 'localhost:9081/_chaos/set?latency=2s'         # slow shard
//	curl -X POST 'localhost:9081/_chaos/set?error_rate=1&error_code=500'
//	curl -X POST 'localhost:9081/_chaos/set?blackhole_rate=1'   # partition
//	curl -X POST 'localhost:9081/_chaos/off'                    # heal
//	curl 'localhost:9081/_chaos/stats'
//
// Faults apply only to proxied requests (the nbody API under /v1 and the
// probe endpoints), never to the /_chaos/ control plane itself. The
// injector is seeded, so a scripted fault sequence replays identically
// run over run. See DESIGN.md §12 and scripts/chaos_smoke.sh.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"time"

	"nbody/internal/chaos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nbody-chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr   = flag.String("addr", ":9081", "listen address")
		target = flag.String("target", "", "upstream base URL to proxy to (required)")
		seed   = flag.Uint64("seed", 1, "deterministic seed for fault sampling")
	)
	flag.Parse()

	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	u, err := url.Parse(*target)
	if err != nil {
		return fmt.Errorf("parsing -target: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("-target %q must be an absolute URL (http://host:port)", *target)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           chaos.NewProxy(u, chaos.New(*seed)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("injecting faults for %s on %s (seed %d, no rules yet — control via POST /_chaos/set)", u, *addr, *seed)
	return srv.ListenAndServe()
}
