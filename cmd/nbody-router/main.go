// Command nbody-router runs the horizontal-sharding tier: a stateless
// proxy that partitions sessions and batch jobs across N nbody-serve
// replicas by consistent hashing on the session/job ID, with per-shard
// health probing, read failover, and graceful shard drain with queued-job
// handoff.
//
// Examples:
//
//	nbody-serve  -addr :8081 -shard-id a &
//	nbody-serve  -addr :8082 -shard-id b &
//	nbody-router -addr :8080 -shard a=http://127.0.0.1:8081 -shard b=http://127.0.0.1:8082
//	curl -s localhost:8080/v1/sessions -d '{"workload":"plummer","n":2048,"dt":1e-3}'
//	curl -s localhost:8080/v1/shards
//	curl -s -X POST localhost:8080/v1/shards/a/drain
//
// See the README "Sharding & routing" section and DESIGN.md §11.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nbody/internal/obs"
	"nbody/internal/router"
)

// shardFlags collects repeated -shard name=url flags.
type shardFlags []router.ShardConfig

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sc := range *s {
		parts[i] = sc.Name + "=" + sc.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*s = append(*s, router.ShardConfig{Name: name, URL: url})
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nbody-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var shards shardFlags
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		vnodes        = flag.Int("virtual-nodes", router.DefaultVirtualNodes, "virtual nodes per shard on the hash ring")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "shard health probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe round-trip budget")
		failAfter     = flag.Int("fail-after", 3, "consecutive probe failures before a shard is down")
		passAfter     = flag.Int("pass-after", 2, "consecutive probe successes before a down shard is up")
		cacheSize     = flag.Int("cache-size", 8192, "ID-to-shard location cache entries")
		drain         = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		proxyTimeout  = flag.Duration("proxy-timeout", 15*time.Second, "per-request budget for proxied non-streaming requests, propagated to shards as X-NBody-Deadline (0 = unlimited)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge an idempotent read to the next candidate shard when the first has not answered within this delay (0 = no hedging)")
		brkFailures   = flag.Int("breaker-failures", 5, "consecutive forwarding failures that open a shard's circuit breaker")
		brkCooldown   = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker sheds before admitting a half-open trial request")
		brkLatency    = flag.Duration("breaker-latency", 0, "treat a forwarded response slower than this as a breaker failure (0 = status/transport errors only)")
	)
	flag.Var(&shards, "shard", "shard as name=url (repeatable, at least one)")
	flag.Parse()

	if *addr == "" {
		return errors.New("-addr must not be empty")
	}
	if len(shards) == 0 {
		return errors.New("at least one -shard name=url is required")
	}
	if *drain <= 0 {
		return fmt.Errorf("-drain-timeout must be > 0 (got %v)", *drain)
	}

	ob, err := obs.NewObserver(os.Stderr, *logFormat, obs.DefaultTraceCapacity)
	if err != nil {
		return err
	}

	// The flag's 0 means "no cap"; the Config's 0 means "default 15s", so
	// translate to the Config's negative-disables convention.
	proxyBudget := *proxyTimeout
	if proxyBudget == 0 {
		proxyBudget = -1
	}
	rt, err := router.New(router.Config{
		Shards:          shards,
		VirtualNodes:    *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		FailAfter:       *failAfter,
		PassAfter:       *passAfter,
		CacheSize:       *cacheSize,
		ProxyTimeout:    proxyBudget,
		HedgeAfter:      *hedgeAfter,
		BreakerFailures: *brkFailures,
		BreakerCooldown: *brkCooldown,
		BreakerLatency:  *brkLatency,
		Obs:             ob,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("routing %d shard(s) on %s (%s)", len(shards), *addr, shards.String())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// The router holds no durable state: drain is just letting in-flight
	// proxied requests (including open watch streams) finish writing.
	log.Printf("signal received, draining (budget %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
