// Command nbody-inspect prints a structural and physical summary of a
// binary checkpoint written by `nbody -save` (or snapshot.Save): counts,
// bounding box, conservation quantities, a radial density profile around
// the center of mass, and the mass spectrum. Useful for sanity-checking
// long runs without loading them into a simulation.
//
// Usage:
//
//	nbody-inspect checkpoint.bin [-bins 12] [-exact-energy]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"nbody/internal/allpairs"
	"nbody/internal/bounds"
	"nbody/internal/grav"
	"nbody/internal/par"
	"nbody/internal/snapshot"
)

func main() {
	bins := flag.Int("bins", 12, "radial density profile bins")
	exact := flag.Bool("exact-energy", false, "compute the O(N²) potential energy (slow for large n)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nbody-inspect [flags] <checkpoint-file>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	sys, meta, err := snapshot.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbody-inspect:", err)
		os.Exit(1)
	}

	rt := par.NewRuntime(0, par.Dynamic)
	n := sys.N()
	fmt.Printf("checkpoint: %s\n", flag.Arg(0))
	fmt.Printf("bodies:     %d (step %d, t=%g)\n", n, meta.Step, meta.Time)
	if err := sys.Validate(); err != nil {
		fmt.Printf("VALIDATION: %v\n", err)
	} else {
		fmt.Println("validation: all state finite")
	}
	if n == 0 {
		return
	}

	box := bounds.OfPositions(rt, par.ParUnseq, sys.PosX, sys.PosY, sys.PosZ)
	com := sys.CenterOfMass()
	fmt.Printf("bbox:       %v (extent %.4g)\n", box, box.MaxExtent())
	fmt.Printf("com:        %v\n", com)
	fmt.Printf("mass:       %.6e total\n", sys.TotalMass())
	fmt.Printf("|momentum|: %.6e\n", sys.Momentum().Norm())
	fmt.Printf("kinetic:    %.6e\n", sys.KineticEnergy())
	if *exact {
		u := allpairs.PotentialEnergy(rt, par.Par, sys, grav.Params{G: 1, Eps: 0})
		fmt.Printf("potential:  %.6e (G=1, ε=0)\n", u)
		fmt.Printf("total E:    %.6e\n", sys.KineticEnergy()+u)
	}

	// Mass spectrum.
	masses := append([]float64(nil), sys.Mass...)
	sort.Float64s(masses)
	fmt.Printf("mass range: [%.4g .. %.4g], median %.4g\n",
		masses[0], masses[n-1], masses[n/2])

	// Radial density profile around the COM in equal-count shells.
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = sys.Pos(i).Sub(com).Norm()
	}
	sort.Float64s(radii)
	fmt.Printf("\nradial profile (%d equal-count shells around com):\n", *bins)
	fmt.Printf("%12s %12s %14s\n", "r_outer", "count", "density")
	prev := 0.0
	per := n / *bins
	if per == 0 {
		per = 1
	}
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		rOut := radii[hi-1]
		vol := 4.0 / 3.0 * math.Pi * (rOut*rOut*rOut - prev*prev*prev)
		density := math.Inf(1)
		if vol > 0 {
			density = float64(hi-lo) / vol
		}
		fmt.Printf("%12.4g %12d %14.4g\n", rOut, hi-lo, density)
		prev = rOut
	}
}
