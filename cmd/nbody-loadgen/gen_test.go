package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"nbody/client"
	"nbody/internal/jobs"
	"nbody/internal/obs"
	"nbody/internal/par"
	"nbody/internal/serve"
)

// newSmokeServer boots an in-process nbody-serve handler with the jobs
// API mounted.
func newSmokeServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := serve.Config{
		MaxSessions:        32,
		MaxBodies:          10_000,
		IdleTTL:            time.Hour,
		StepSlots:          2,
		MaxQueue:           2,
		MaxStepsPerRequest: 100_000,
		Runtime:            par.NewRuntime(2, par.Dynamic),
		Obs:                obs.Nop(),
	}
	m, err := serve.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jm, err := jobs.NewManager(jobs.Config{
		Runner:   serve.NewJobRunner(m),
		Workers:  1,
		MaxQueue: 4,
		Obs:      cfg.Obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		jm.Close(ctx)
		m.Close(ctx)
	})
	srv := httptest.NewServer(serve.NewHandlerWithJobs(m, jm))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunInvariants drives a short mixed load against a live in-process
// service and checks the report's accounting: every dispatched request is
// classified exactly once, so sent ≥ ok + shed + failed holds with
// equality once all workers drained.
func TestRunInvariants(t *testing.T) {
	srv := newSmokeServer(t)
	c, err := client.New(srv.URL, client.WithRetries(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}

	cfg := genConfig{
		RPS:        300,
		Duration:   700 * time.Millisecond,
		Workers:    16,
		Mix:        map[string]int{classStep: 8, classJob: 1, classWatch: 1},
		Sessions:   4,
		N:          32,
		DT:         1e-3,
		StepBatch:  2,
		WatchSteps: 4,
		WatchEvery: 2,
		JobSteps:   10,
		JobClass:   "low",
		Seed:       1,
	}
	rep, err := run(context.Background(), []tenantClient{{c: c}}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Totals.Sent == 0 {
		t.Fatal("no requests dispatched")
	}
	if got := rep.Totals.OK + rep.Totals.Shed + rep.Totals.Failed; rep.Totals.Sent < got {
		t.Errorf("totals: sent %d < ok+shed+failed %d", rep.Totals.Sent, got)
	} else if rep.Totals.Sent != got {
		t.Errorf("totals: sent %d != ok+shed+failed %d — some request finished unclassified", rep.Totals.Sent, got)
	}
	for cl, row := range rep.Classes {
		if row.Sent != row.OK+row.Shed+row.Failed {
			t.Errorf("class %s: sent %d != ok %d + shed %d + failed %d", cl, row.Sent, row.OK, row.Shed, row.Failed)
		}
		if row.Sent > 0 && (row.P50Ms < 0 || row.P99Ms < row.P50Ms || row.MaxMs < row.P99Ms) {
			t.Errorf("class %s: inconsistent latency quantiles %+v", cl, row)
		}
		if row.ShedRate < 0 || row.ShedRate > 1 {
			t.Errorf("class %s: shed_rate %v out of [0,1]", cl, row.ShedRate)
		}
	}
	if rep.Classes[classStep].Sent == 0 {
		t.Error("step class saw no traffic despite weight 8")
	}
	if rep.Totals.Server5xx != 0 {
		t.Errorf("server answered %d 5xx during smoke load", rep.Totals.Server5xx)
	}
	// The SDK list iterator must still work against the post-run state
	// (jobs legitimately leave artifact sessions behind).
	for _, err := range c.Sessions(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestParseMix covers the mix flag grammar.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("step=8, job=1,watch=0")
	if err != nil {
		t.Fatal(err)
	}
	if mix[classStep] != 8 || mix[classJob] != 1 || mix[classWatch] != 0 {
		t.Errorf("mix = %v", mix)
	}
	for _, bad := range []string{"", "step", "step=x", "step=-1", "warp=1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestPickClassDistribution sanity-checks the weighted draw: a class with
// all the weight always wins, a zero-weight class never does.
func TestPickClassDistribution(t *testing.T) {
	classes, weights, total := mixSlices(map[string]int{classStep: 3, classJob: 0, classWatch: 1})
	if total != 4 || len(classes) != 2 {
		t.Fatalf("mixSlices = %v %v %d", classes, weights, total)
	}
	for _, cl := range classes {
		if cl == classJob {
			t.Fatal("zero-weight class survived mixSlices")
		}
	}
}
