package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"nbody/client"
)

// Traffic class names.
const (
	classStep  = "step"
	classJob   = "job"
	classWatch = "watch"
)

// genConfig parameterizes one load-generation run.
type genConfig struct {
	RPS      float64       // target open-loop arrival rate
	Duration time.Duration // how long to generate arrivals
	Workers  int           // max in-flight requests; arrivals beyond it are dropped
	Mix      map[string]int
	Sessions int // session pool size for step/watch traffic

	N         int
	DT        float64
	Pipeline  bool // pool sessions request pipelined (phase-task) stepping
	StepBatch int  // steps per step request

	WatchSteps int
	WatchEvery int

	JobSteps int
	JobClass string

	Seed uint64
}

// classStats accumulates one traffic class's counters and client-side
// latencies.
type classStats struct {
	mu        sync.Mutex
	sent      int
	ok        int
	shed      int
	failed    int
	latencies []float64 // milliseconds, completed ops only (ok+shed+failed)
}

// record classifies one completed operation and returns whether it was a
// server-side 5xx.
func (s *classStats) record(lat time.Duration, err error) (is5xx bool) {
	ms := float64(lat) / float64(time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latencies = append(s.latencies, ms)
	switch {
	case err == nil:
		s.ok++
	case client.IsOverloaded(err):
		s.shed++
	default:
		s.failed++
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status >= 500 {
			is5xx = true
		}
	}
	return is5xx
}

// ClassReport is the per-class section of the JSON report.
type ClassReport struct {
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Failed   int     `json:"failed"`
	Dropped  int     `json:"dropped"`
	ShedRate float64 `json:"shed_rate"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Report is the loadgen's JSON output: client-observed service levels per
// traffic class plus run-wide totals.
type Report struct {
	TargetRPS       float64                `json:"target_rps"`
	DurationSeconds float64                `json:"duration_seconds"`
	Workers         int                    `json:"workers"`
	AchievedRPS     float64                `json:"achieved_rps"`
	Classes         map[string]ClassReport `json:"classes"`
	Totals          struct {
		Sent      int     `json:"sent"`
		OK        int     `json:"ok"`
		Shed      int     `json:"shed"`
		Failed    int     `json:"failed"`
		Dropped   int     `json:"dropped"`
		ShedRate  float64 `json:"shed_rate"`
		Server5xx int     `json:"server_5xx"`
	} `json:"totals"`
}

// percentile returns the q-quantile (0 < q <= 1) of sorted ms samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// generator drives open-loop traffic against one service through the SDK.
type generator struct {
	c   *client.Client
	cfg genConfig

	pool      chan string // idle session IDs for step/watch traffic
	inflight  chan struct{}
	stats     map[string]*classStats
	dropped   map[string]*int
	server5xx int
	mu        sync.Mutex // guards server5xx and dropped
	wg        sync.WaitGroup
}

// run executes the whole load test: build the session pool, generate
// arrivals for cfg.Duration, wait for stragglers, report.
func run(ctx context.Context, c *client.Client, cfg genConfig) (Report, error) {
	g := &generator{
		c:        c,
		cfg:      cfg,
		pool:     make(chan string, cfg.Sessions),
		inflight: make(chan struct{}, cfg.Workers),
		stats:    map[string]*classStats{},
		dropped:  map[string]*int{},
	}
	classes, weights, total := mixSlices(cfg.Mix)
	if total <= 0 {
		return Report{}, errors.New("traffic mix has no positive weights")
	}
	for _, cl := range classes {
		g.stats[cl] = &classStats{}
		g.dropped[cl] = new(int)
	}

	created, err := g.buildPool(ctx)
	if err != nil {
		return Report{}, err
	}
	defer g.cleanup(created)

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()

arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case now := <-tick.C:
			if now.After(deadline) {
				break arrivals
			}
			cl := pickClass(rng, classes, weights, total)
			g.dispatch(ctx, cl)
		}
	}
	g.wg.Wait()
	elapsed := time.Since(start)
	return g.report(elapsed), nil
}

// mixSlices flattens the mix map into parallel class/weight slices in a
// deterministic order.
func mixSlices(mix map[string]int) ([]string, []int, int) {
	order := []string{classStep, classJob, classWatch}
	var classes []string
	var weights []int
	total := 0
	for _, cl := range order {
		w := mix[cl]
		if w > 0 {
			classes = append(classes, cl)
			weights = append(weights, w)
			total += w
		}
	}
	return classes, weights, total
}

func pickClass(rng *rand.Rand, classes []string, weights []int, total int) string {
	n := rng.IntN(total)
	for i, w := range weights {
		if n < w {
			return classes[i]
		}
		n -= w
	}
	return classes[len(classes)-1]
}

// buildPool creates the session pool for step/watch traffic and returns
// the created IDs for cleanup.
func (g *generator) buildPool(ctx context.Context) ([]string, error) {
	needsPool := g.cfg.Mix[classStep] > 0 || g.cfg.Mix[classWatch] > 0
	if !needsPool {
		return nil, nil
	}
	var created []string
	for i := 0; i < g.cfg.Sessions; i++ {
		req := client.CreateSessionRequest{
			Workload: "plummer",
			N:        g.cfg.N,
			DT:       g.cfg.DT,
			Seed:     g.cfg.Seed + uint64(i),
		}
		if g.cfg.Pipeline {
			req.DT = 0
			req.Config = &client.SessionConfig{DT: g.cfg.DT, Pipeline: client.Bool(true)}
		}
		s, err := g.c.CreateSession(ctx, req)
		if err != nil {
			g.cleanup(created)
			return nil, fmt.Errorf("creating pool session %d/%d: %w", i+1, g.cfg.Sessions, err)
		}
		created = append(created, s.ID)
		g.pool <- s.ID
	}
	return created, nil
}

func (g *generator) cleanup(ids []string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range ids {
		g.c.DeleteSession(ctx, id)
	}
}

// dispatch hands one arrival to a worker, or drops it when the in-flight
// cap is reached (open-loop: arrivals never queue client-side).
func (g *generator) dispatch(ctx context.Context, cl string) {
	select {
	case g.inflight <- struct{}{}:
	default:
		g.mu.Lock()
		*g.dropped[cl]++
		g.mu.Unlock()
		return
	}
	st := g.stats[cl]
	st.mu.Lock()
	st.sent++
	st.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.inflight }()
		begin := time.Now()
		err := g.execute(ctx, cl)
		if st.record(time.Since(begin), err) {
			g.mu.Lock()
			g.server5xx++
			g.mu.Unlock()
		}
	}()
}

// execute performs one operation of the given class.
func (g *generator) execute(ctx context.Context, cl string) error {
	switch cl {
	case classStep:
		id, ok := g.takeSession()
		if !ok {
			return errPoolExhausted
		}
		defer func() { g.pool <- id }()
		_, err := g.c.Step(ctx, id, g.cfg.StepBatch)
		return err
	case classWatch:
		id, ok := g.takeSession()
		if !ok {
			return errPoolExhausted
		}
		defer func() { g.pool <- id }()
		return g.watchOnce(ctx, id)
	case classJob:
		_, err := g.c.SubmitJob(ctx, client.JobSpec{
			Workload: "plummer",
			N:        g.cfg.N,
			DT:       g.cfg.DT,
			Seed:     g.cfg.Seed,
			Steps:    g.cfg.JobSteps,
			Class:    g.cfg.JobClass,
		})
		return err
	}
	return fmt.Errorf("unknown traffic class %q", cl)
}

// errPoolExhausted marks a step/watch arrival that found every pool
// session busy — client-side contention, counted as failed (it never
// reached the server, so it is neither ok nor shed).
var errPoolExhausted = errors.New("session pool exhausted")

func (g *generator) takeSession() (string, bool) {
	select {
	case id := <-g.pool:
		return id, true
	default:
		return "", false
	}
}

func (g *generator) watchOnce(ctx context.Context, id string) error {
	w, err := g.c.Watch(ctx, id, client.WatchOptions{
		Steps: g.cfg.WatchSteps,
		Every: g.cfg.WatchEvery,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	for {
		if _, err := w.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// report assembles the final JSON structure.
func (g *generator) report(elapsed time.Duration) Report {
	rep := Report{
		TargetRPS:       g.cfg.RPS,
		DurationSeconds: elapsed.Seconds(),
		Workers:         g.cfg.Workers,
		Classes:         map[string]ClassReport{},
	}
	for cl, st := range g.stats {
		st.mu.Lock()
		row := ClassReport{
			Sent:    st.sent,
			OK:      st.ok,
			Shed:    st.shed,
			Failed:  st.failed,
			Dropped: *g.dropped[cl],
		}
		lats := append([]float64(nil), st.latencies...)
		st.mu.Unlock()
		if row.Sent > 0 {
			row.ShedRate = float64(row.Shed) / float64(row.Sent)
		}
		if len(lats) > 0 {
			sort.Float64s(lats)
			row.P50Ms = percentile(lats, 0.50)
			row.P95Ms = percentile(lats, 0.95)
			row.P99Ms = percentile(lats, 0.99)
			row.MaxMs = lats[len(lats)-1]
			sum := 0.0
			for _, v := range lats {
				sum += v
			}
			row.MeanMs = sum / float64(len(lats))
		}
		rep.Classes[cl] = row
		rep.Totals.Sent += row.Sent
		rep.Totals.OK += row.OK
		rep.Totals.Shed += row.Shed
		rep.Totals.Failed += row.Failed
		rep.Totals.Dropped += row.Dropped
	}
	if rep.Totals.Sent > 0 {
		rep.Totals.ShedRate = float64(rep.Totals.Shed) / float64(rep.Totals.Sent)
		rep.AchievedRPS = float64(rep.Totals.Sent) / elapsed.Seconds()
	}
	rep.Totals.Server5xx = g.server5xx
	return rep
}
