package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"nbody/client"
)

// Traffic class names.
const (
	classStep  = "step"
	classJob   = "job"
	classWatch = "watch"
)

// genConfig parameterizes one load-generation run.
type genConfig struct {
	RPS      float64       // target open-loop arrival rate
	Duration time.Duration // how long to generate arrivals
	Workers  int           // max in-flight requests; arrivals beyond it are dropped
	Mix      map[string]int
	Sessions int // session pool size for step/watch traffic

	N         int
	DT        float64
	Pipeline  bool // pool sessions request pipelined (phase-task) stepping
	StepBatch int  // steps per step request

	WatchSteps int
	WatchEvery int

	JobSteps int
	JobClass string

	// Tenants are the API identities to drive traffic as (empty =
	// single-tenant, no auth). Pool sessions spread round-robin across
	// them; each job arrival picks one uniformly at random.
	Tenants []tenantKey
	// Scenarios is a weighted scenario-pack mix; when non-empty, pool
	// sessions and jobs are created by pack name (with N/Seed overrides)
	// instead of the flat plummer spec.
	Scenarios map[string]int

	Seed uint64
}

// tenantKey is one tenant identity: the name for report attribution and
// the bearer key the SDK authenticates with.
type tenantKey struct {
	Name string
	Key  string
}

// tenantClient pairs a tenant name with its authenticated SDK client. The
// zero name is the anonymous single-tenant client.
type tenantClient struct {
	name string
	c    *client.Client
}

// poolSession is one pooled session and the index of the tenant client
// that owns it — step/watch requests go through the owner so per-tenant
// quotas and rate limits land on the right identity.
type poolSession struct {
	id    string
	owner int
}

// tenantCounters accumulates one tenant's completed-operation outcomes.
// Unlike classStats it keeps no latencies: the per-tenant section exists
// to show fairness (who got shed), not latency distributions.
type tenantCounters struct {
	mu                     sync.Mutex
	sent, ok, shed, failed int
}

func (t *tenantCounters) record(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sent++
	switch {
	case err == nil:
		t.ok++
	case client.IsOverloaded(err):
		t.shed++
	default:
		t.failed++
	}
}

// TenantReport is the per-tenant section of the JSON report: completed
// operations by outcome. The shed column is the fairness signal — under a
// flooding neighbor a well-behaved tenant's sheds should stay near zero.
type TenantReport struct {
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Failed   int     `json:"failed"`
	ShedRate float64 `json:"shed_rate"`
}

// classStats accumulates one traffic class's counters and client-side
// latencies.
type classStats struct {
	mu        sync.Mutex
	sent      int
	ok        int
	shed      int
	failed    int
	latencies []float64 // milliseconds, completed ops only (ok+shed+failed)
}

// record classifies one completed operation and returns whether it was a
// server-side 5xx.
func (s *classStats) record(lat time.Duration, err error) (is5xx bool) {
	ms := float64(lat) / float64(time.Millisecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latencies = append(s.latencies, ms)
	switch {
	case err == nil:
		s.ok++
	case client.IsOverloaded(err):
		s.shed++
	default:
		s.failed++
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status >= 500 {
			is5xx = true
		}
	}
	return is5xx
}

// ClassReport is the per-class section of the JSON report.
type ClassReport struct {
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Failed   int     `json:"failed"`
	Dropped  int     `json:"dropped"`
	ShedRate float64 `json:"shed_rate"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Report is the loadgen's JSON output: client-observed service levels per
// traffic class plus run-wide totals.
type Report struct {
	TargetRPS       float64                `json:"target_rps"`
	DurationSeconds float64                `json:"duration_seconds"`
	Workers         int                    `json:"workers"`
	AchievedRPS     float64                `json:"achieved_rps"`
	Classes         map[string]ClassReport `json:"classes"`
	// Tenants breaks completed operations out per tenant identity
	// (multi-tenant runs only).
	Tenants map[string]TenantReport `json:"tenants,omitempty"`
	Totals  struct {
		Sent      int     `json:"sent"`
		OK        int     `json:"ok"`
		Shed      int     `json:"shed"`
		Failed    int     `json:"failed"`
		Dropped   int     `json:"dropped"`
		ShedRate  float64 `json:"shed_rate"`
		Server5xx int     `json:"server_5xx"`
	} `json:"totals"`
}

// percentile returns the q-quantile (0 < q <= 1) of sorted ms samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// generator drives open-loop traffic against one service through the SDK.
type generator struct {
	clients []tenantClient // one per tenant identity; [0] in single-tenant mode
	cfg     genConfig

	scenNames   []string // weighted scenario mix, parallel slices
	scenWeights []int
	scenTotal   int

	pool      chan poolSession // idle sessions for step/watch traffic
	inflight  chan struct{}
	stats     map[string]*classStats
	tstats    map[string]*tenantCounters // per-tenant outcomes (nil single-tenant)
	dropped   map[string]*int
	server5xx int
	mu        sync.Mutex // guards server5xx and dropped
	wg        sync.WaitGroup
}

// run executes the whole load test: build the session pool, generate
// arrivals for cfg.Duration, wait for stragglers, report.
func run(ctx context.Context, clients []tenantClient, cfg genConfig) (Report, error) {
	if len(clients) == 0 {
		return Report{}, errors.New("no clients")
	}
	g := &generator{
		clients:  clients,
		cfg:      cfg,
		pool:     make(chan poolSession, cfg.Sessions),
		inflight: make(chan struct{}, cfg.Workers),
		stats:    map[string]*classStats{},
		dropped:  map[string]*int{},
	}
	classes, weights, total := mixSlices(cfg.Mix)
	if total <= 0 {
		return Report{}, errors.New("traffic mix has no positive weights")
	}
	for _, cl := range classes {
		g.stats[cl] = &classStats{}
		g.dropped[cl] = new(int)
	}
	if len(cfg.Tenants) > 0 {
		g.tstats = make(map[string]*tenantCounters, len(cfg.Tenants))
		for _, t := range cfg.Tenants {
			g.tstats[t.Name] = &tenantCounters{}
		}
	}
	g.scenNames, g.scenWeights, g.scenTotal = scenarioSlices(cfg.Scenarios)

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))

	created, err := g.buildPool(ctx, rng)
	if err != nil {
		return Report{}, err
	}
	defer g.cleanup(created)

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()

arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case now := <-tick.C:
			if now.After(deadline) {
				break arrivals
			}
			cl := pickClass(rng, classes, weights, total)
			g.dispatch(ctx, cl, rng)
		}
	}
	g.wg.Wait()
	elapsed := time.Since(start)
	return g.report(elapsed), nil
}

// mixSlices flattens the mix map into parallel class/weight slices in a
// deterministic order.
func mixSlices(mix map[string]int) ([]string, []int, int) {
	order := []string{classStep, classJob, classWatch}
	var classes []string
	var weights []int
	total := 0
	for _, cl := range order {
		w := mix[cl]
		if w > 0 {
			classes = append(classes, cl)
			weights = append(weights, w)
			total += w
		}
	}
	return classes, weights, total
}

func pickClass(rng *rand.Rand, classes []string, weights []int, total int) string {
	n := rng.IntN(total)
	for i, w := range weights {
		if n < w {
			return classes[i]
		}
		n -= w
	}
	return classes[len(classes)-1]
}

// scenarioSlices flattens the scenario mix into parallel name/weight
// slices, sorted by name so the same seed reproduces the same run.
func scenarioSlices(mix map[string]int) ([]string, []int, int) {
	names := make([]string, 0, len(mix))
	for name, w := range mix {
		if w > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	weights := make([]int, len(names))
	total := 0
	for i, name := range names {
		weights[i] = mix[name]
		total += mix[name]
	}
	return names, weights, total
}

// pickScenario returns a weighted random pack name, or "" when no scenario
// mix is configured (flat plummer spec).
func (g *generator) pickScenario(rng *rand.Rand) string {
	if g.scenTotal <= 0 {
		return ""
	}
	return pickClass(rng, g.scenNames, g.scenWeights, g.scenTotal)
}

// buildPool creates the session pool for step/watch traffic and returns
// the created sessions for cleanup. Sessions spread round-robin across the
// tenant clients so per-tenant session quotas see an even load; with a
// scenario mix each session draws a weighted pack instead of the flat
// plummer spec.
func (g *generator) buildPool(ctx context.Context, rng *rand.Rand) ([]poolSession, error) {
	needsPool := g.cfg.Mix[classStep] > 0 || g.cfg.Mix[classWatch] > 0
	if !needsPool {
		return nil, nil
	}
	var created []poolSession
	for i := 0; i < g.cfg.Sessions; i++ {
		var req client.CreateSessionRequest
		if scen := g.pickScenario(rng); scen != "" {
			// The pack owns the physics; only the size and seed are
			// overridden so runs stay small and reproducible.
			req.Scenario = &client.ScenarioSpec{Name: scen, N: g.cfg.N, Seed: g.cfg.Seed + uint64(i)}
			if g.cfg.Pipeline {
				req.Config = &client.SessionConfig{Pipeline: client.Bool(true)}
			}
		} else {
			req = client.CreateSessionRequest{
				Workload: "plummer",
				N:        g.cfg.N,
				DT:       g.cfg.DT,
				Seed:     g.cfg.Seed + uint64(i),
			}
			if g.cfg.Pipeline {
				req.DT = 0
				req.Config = &client.SessionConfig{DT: g.cfg.DT, Pipeline: client.Bool(true)}
			}
		}
		owner := i % len(g.clients)
		s, err := g.clients[owner].c.CreateSession(ctx, req)
		if err != nil {
			g.cleanup(created)
			return nil, fmt.Errorf("creating pool session %d/%d: %w", i+1, g.cfg.Sessions, err)
		}
		ps := poolSession{id: s.ID, owner: owner}
		created = append(created, ps)
		g.pool <- ps
	}
	return created, nil
}

func (g *generator) cleanup(sessions []poolSession) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, ps := range sessions {
		g.clients[ps.owner].c.DeleteSession(ctx, ps.id)
	}
}

// dispatch hands one arrival to a worker, or drops it when the in-flight
// cap is reached (open-loop: arrivals never queue client-side). The tenant
// and scenario draws happen here, on the arrival goroutine, because rng is
// not safe for concurrent use.
func (g *generator) dispatch(ctx context.Context, cl string, rng *rand.Rand) {
	tc := rng.IntN(len(g.clients))
	scen := g.pickScenario(rng)
	select {
	case g.inflight <- struct{}{}:
	default:
		g.mu.Lock()
		*g.dropped[cl]++
		g.mu.Unlock()
		return
	}
	st := g.stats[cl]
	st.mu.Lock()
	st.sent++
	st.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.inflight }()
		begin := time.Now()
		tenant, err := g.execute(ctx, cl, tc, scen)
		if st.record(time.Since(begin), err) {
			g.mu.Lock()
			g.server5xx++
			g.mu.Unlock()
		}
		if ts := g.tstats[tenant]; ts != nil {
			ts.record(err)
		}
	}()
}

// execute performs one operation of the given class and reports the tenant
// it ran as: jobs go out as the drawn tenant tc, step/watch as the pooled
// session's owner (the identity whose quotas the request lands on).
func (g *generator) execute(ctx context.Context, cl string, tc int, scen string) (string, error) {
	switch cl {
	case classStep:
		ps, ok := g.takeSession()
		if !ok {
			return g.clients[tc].name, errPoolExhausted
		}
		defer func() { g.pool <- ps }()
		owner := g.clients[ps.owner]
		_, err := owner.c.Step(ctx, ps.id, g.cfg.StepBatch)
		return owner.name, err
	case classWatch:
		ps, ok := g.takeSession()
		if !ok {
			return g.clients[tc].name, errPoolExhausted
		}
		defer func() { g.pool <- ps }()
		owner := g.clients[ps.owner]
		return owner.name, g.watchOnce(ctx, owner.c, ps.id)
	case classJob:
		spec := client.JobSpec{
			Steps: g.cfg.JobSteps,
			Class: g.cfg.JobClass,
		}
		if scen != "" {
			spec.Scenario = &client.ScenarioSpec{Name: scen, N: g.cfg.N, Seed: g.cfg.Seed}
		} else {
			spec.Workload = "plummer"
			spec.N = g.cfg.N
			spec.DT = g.cfg.DT
			spec.Seed = g.cfg.Seed
		}
		_, err := g.clients[tc].c.SubmitJob(ctx, spec)
		return g.clients[tc].name, err
	}
	return g.clients[tc].name, fmt.Errorf("unknown traffic class %q", cl)
}

// errPoolExhausted marks a step/watch arrival that found every pool
// session busy — client-side contention, counted as failed (it never
// reached the server, so it is neither ok nor shed).
var errPoolExhausted = errors.New("session pool exhausted")

func (g *generator) takeSession() (poolSession, bool) {
	select {
	case ps := <-g.pool:
		return ps, true
	default:
		return poolSession{}, false
	}
}

func (g *generator) watchOnce(ctx context.Context, c *client.Client, id string) error {
	w, err := c.Watch(ctx, id, client.WatchOptions{
		Steps: g.cfg.WatchSteps,
		Every: g.cfg.WatchEvery,
	})
	if err != nil {
		return err
	}
	defer w.Close()
	for {
		if _, err := w.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// report assembles the final JSON structure.
func (g *generator) report(elapsed time.Duration) Report {
	rep := Report{
		TargetRPS:       g.cfg.RPS,
		DurationSeconds: elapsed.Seconds(),
		Workers:         g.cfg.Workers,
		Classes:         map[string]ClassReport{},
	}
	for cl, st := range g.stats {
		st.mu.Lock()
		row := ClassReport{
			Sent:    st.sent,
			OK:      st.ok,
			Shed:    st.shed,
			Failed:  st.failed,
			Dropped: *g.dropped[cl],
		}
		lats := append([]float64(nil), st.latencies...)
		st.mu.Unlock()
		if row.Sent > 0 {
			row.ShedRate = float64(row.Shed) / float64(row.Sent)
		}
		if len(lats) > 0 {
			sort.Float64s(lats)
			row.P50Ms = percentile(lats, 0.50)
			row.P95Ms = percentile(lats, 0.95)
			row.P99Ms = percentile(lats, 0.99)
			row.MaxMs = lats[len(lats)-1]
			sum := 0.0
			for _, v := range lats {
				sum += v
			}
			row.MeanMs = sum / float64(len(lats))
		}
		rep.Classes[cl] = row
		rep.Totals.Sent += row.Sent
		rep.Totals.OK += row.OK
		rep.Totals.Shed += row.Shed
		rep.Totals.Failed += row.Failed
		rep.Totals.Dropped += row.Dropped
	}
	if rep.Totals.Sent > 0 {
		rep.Totals.ShedRate = float64(rep.Totals.Shed) / float64(rep.Totals.Sent)
		rep.AchievedRPS = float64(rep.Totals.Sent) / elapsed.Seconds()
	}
	rep.Totals.Server5xx = g.server5xx
	if g.tstats != nil {
		rep.Tenants = make(map[string]TenantReport, len(g.tstats))
		for name, tc := range g.tstats {
			tc.mu.Lock()
			row := TenantReport{Sent: tc.sent, OK: tc.ok, Shed: tc.shed, Failed: tc.failed}
			tc.mu.Unlock()
			if row.Sent > 0 {
				row.ShedRate = float64(row.Shed) / float64(row.Sent)
			}
			rep.Tenants[name] = row
		}
	}
	return rep
}
