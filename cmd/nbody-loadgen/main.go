// Command nbody-loadgen is an open-loop load generator for nbody-serve,
// driving a configurable mix of session-step, job-submit and watch
// traffic through the client SDK and reporting client-observed service
// levels (p50/p95/p99 latency, shed rate, error counts) as JSON.
//
// Open-loop means arrivals follow the target rate regardless of how fast
// the server answers: a slow or shedding server does not slow the
// generator down, so the numbers measure the service under the offered
// load rather than under whatever load the service chooses to accept.
// Arrivals beyond the -workers in-flight cap are dropped client-side and
// reported separately.
//
// The SDK's automatic retry is disabled so every shed (429) surfaces in
// the shed column instead of hiding inside a retried success.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nbody/client"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "service base URL")
		rps       = flag.Float64("rps", 20, "target open-loop arrival rate (requests/second)")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate arrivals")
		workers   = flag.Int("workers", 64, "max in-flight requests; arrivals beyond it are dropped")
		mix       = flag.String("mix", "step=8,job=1,watch=1", "traffic mix weights, class=weight comma-separated (classes: step, job, watch)")
		sessions  = flag.Int("sessions", 8, "session pool size for step/watch traffic")
		n         = flag.Int("n", 256, "bodies per pooled session and job")
		dt        = flag.Float64("dt", 1e-3, "time step")
		pipeline  = flag.Bool("pipeline", false, "create pool sessions with config.pipeline=true (phase-task stepping)")
		stepBatch = flag.Int("step-batch", 5, "steps per step request")
		watchSt   = flag.Int("watch-steps", 10, "steps per watch stream")
		watchEv   = flag.Int("watch-every", 5, "event interval within a watch stream")
		jobSteps  = flag.Int("job-steps", 50, "steps per submitted job")
		jobClass  = flag.String("job-class", "low", "priority class of submitted jobs")
		tenants   = flag.String("tenants", "", "tenant API keys, name=key comma-separated; traffic spreads across them and the report breaks sheds out per tenant (empty = single-tenant, no auth)")
		scenarios = flag.String("scenarios", "", "scenario-pack mix weights, name=weight comma-separated (e.g. plummer=3,galaxy-merger=1); replaces the flat plummer spec for pool sessions and jobs (empty = flat spec)")
		seed      = flag.Uint64("seed", 1, "deterministic seed for mix selection and workloads")
		waitReady = flag.Duration("wait-ready", 0, "poll /readyz up to this long before starting (0 = don't wait)")
		strict5xx = flag.Bool("strict-5xx", false, "exit nonzero if any server 5xx was observed")
		out       = flag.String("out", "", "also write the JSON report to this file")
	)
	flag.Parse()

	cfg := genConfig{
		RPS:        *rps,
		Duration:   *duration,
		Workers:    *workers,
		Sessions:   *sessions,
		N:          *n,
		DT:         *dt,
		Pipeline:   *pipeline,
		StepBatch:  *stepBatch,
		WatchSteps: *watchSt,
		WatchEvery: *watchEv,
		JobSteps:   *jobSteps,
		JobClass:   *jobClass,
		Seed:       *seed,
	}
	var err error
	cfg.Mix, err = parseMix(*mix)
	if err != nil {
		fatalf("parsing -mix: %v", err)
	}
	cfg.Tenants, err = parseTenants(*tenants)
	if err != nil {
		fatalf("parsing -tenants: %v", err)
	}
	cfg.Scenarios, err = parseScenarios(*scenarios)
	if err != nil {
		fatalf("parsing -scenarios: %v", err)
	}
	if cfg.RPS <= 0 || cfg.Duration <= 0 || cfg.Workers <= 0 || cfg.Sessions <= 0 {
		fatalf("-rps, -duration, -workers and -sessions must be positive")
	}

	// Retries off: shed responses must show up in the report, not be
	// silently absorbed. One SDK client per tenant identity; index 0 is the
	// anonymous client in single-tenant mode.
	clients, err := buildClients(*addr, cfg.Tenants)
	if err != nil {
		fatalf("%v", err)
	}
	c := clients[0].c

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *waitReady > 0 {
		if err := waitUntilReady(ctx, c, *waitReady); err != nil {
			fatalf("service not ready: %v", err)
		}
	}

	rep, err := run(ctx, clients, cfg)
	if err != nil {
		fatalf("%v", err)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fatalf("writing -out: %v", err)
		}
	}
	if *strict5xx && rep.Totals.Server5xx > 0 {
		fatalf("observed %d server 5xx responses", rep.Totals.Server5xx)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nbody-loadgen: "+format+"\n", args...)
	os.Exit(1)
}

// parseMix turns "step=8,job=1,watch=1" into weight map entries.
func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		cl, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not class=weight", part)
		}
		cl = strings.TrimSpace(cl)
		switch cl {
		case classStep, classJob, classWatch:
		default:
			return nil, fmt.Errorf("unknown class %q (want step, job or watch)", cl)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("weight %q must be a non-negative integer", val)
		}
		mix[cl] = w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix %q has no entries", s)
	}
	return mix, nil
}

// parseTenants turns "alice=key-a,bob=key-b" into tenant identities the
// generator authenticates as.
func parseTenants(s string) ([]tenantKey, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var ts []tenantKey
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, key, ok := strings.Cut(part, "=")
		name, key = strings.TrimSpace(name), strings.TrimSpace(key)
		if !ok || name == "" || key == "" {
			return nil, fmt.Errorf("entry %q is not name=key", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate tenant %q", name)
		}
		seen[name] = true
		ts = append(ts, tenantKey{Name: name, Key: key})
	}
	return ts, nil
}

// parseScenarios turns "plummer=3,galaxy-merger=1" into scenario-pack mix
// weights. Pack names are validated server-side (GET /v1/scenarios lists
// them), so any name is accepted here.
func parseScenarios(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("weight %q must be a non-negative integer", val)
		}
		mix[name] = w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("scenario mix %q has no entries", s)
	}
	return mix, nil
}

// buildClients constructs one SDK client per tenant identity, or a single
// anonymous client when no tenants were given.
func buildClients(addr string, tenants []tenantKey) ([]tenantClient, error) {
	if len(tenants) == 0 {
		c, err := client.New(addr, client.WithRetries(0, 0, 0))
		if err != nil {
			return nil, err
		}
		return []tenantClient{{c: c}}, nil
	}
	out := make([]tenantClient, 0, len(tenants))
	for _, t := range tenants {
		c, err := client.New(addr, client.WithRetries(0, 0, 0), client.WithAPIKey(t.Key))
		if err != nil {
			return nil, err
		}
		out = append(out, tenantClient{name: t.Name, c: c})
	}
	return out, nil
}

// waitUntilReady polls /readyz until it answers OK or the budget ends.
func waitUntilReady(ctx context.Context, c *client.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var last error
	for time.Now().Before(deadline) {
		if last = c.Ready(ctx); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return last
}
