// Command babelstream measures host memory bandwidth with the five
// BabelStream kernels (Copy, Mul, Add, Triad, Dot), reproducing the
// environment-validation column of the paper's Table I for this machine.
//
// Usage:
//
//	babelstream [-n elems] [-iters k] [-workers w] [-seq]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"nbody/internal/par"
	"nbody/internal/stream"
)

func main() {
	n := flag.Int("n", stream.DefaultN, "array length in float64 elements")
	iters := flag.Int("iters", 20, "timed iterations per kernel")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run sequentially (single core)")
	flag.Parse()

	pol := par.ParUnseq
	rt := par.NewRuntime(*workers, par.Dynamic)
	if *seq {
		pol = par.Seq
		rt = par.NewRuntime(1, par.Dynamic)
	}

	fmt.Printf("BabelStream (Go) — %d elements/array (%.1f MiB), %d iterations, %d workers, policy %v\n",
		*n, float64(*n)*8/(1<<20), *iters, rt.Workers(), pol)
	fmt.Printf("GOMAXPROCS=%d GOOS=%s GOARCH=%s\n\n", runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH)

	results := stream.Benchmark(rt, pol, *n, *iters)
	ok := true
	for _, r := range results {
		fmt.Println(r)
		ok = ok && r.Checked
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "\nERROR: result verification failed")
		os.Exit(1)
	}
	fmt.Println("\nSolution validates.")
}
