// Barnes-Hut-SNE: the machine-learning application the paper's
// introduction names as the modern motivation for Barnes-Hut ("more
// recently for high-dimensional data visualisation in machine learning").
//
// The example embeds a synthetic high-dimensional dataset of Gaussian
// clusters into 2D with t-SNE, approximating the O(N²) repulsive gradient
// with the concurrent quadtree (the structure of the paper's Figure 1),
// then renders the embedding as ASCII and reports 1-NN purity.
//
// Usage:
//
//	go run ./examples/tsne [-n 900] [-dim 16] [-clusters 6] [-iters 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"nbody/internal/rng"
	"nbody/internal/tsne"
)

func main() {
	n := flag.Int("n", 900, "number of points")
	dim := flag.Int("dim", 16, "input dimensionality")
	clusters := flag.Int("clusters", 6, "planted Gaussian clusters")
	iters := flag.Int("iters", 300, "gradient iterations")
	theta := flag.Float64("theta", 0.5, "Barnes-Hut opening threshold (0 = exact)")
	perplexity := flag.Float64("perplexity", 25, "t-SNE perplexity")
	flag.Parse()

	// Synthetic data: k Gaussian blobs in dim dimensions.
	src := rng.New(42)
	centers := make([][]float64, *clusters)
	for c := range centers {
		centers[c] = make([]float64, *dim)
		for t := range centers[c] {
			centers[c][t] = src.Range(-25, 25)
		}
	}
	x := make([][]float64, *n)
	labels := make([]int, *n)
	for i := 0; i < *n; i++ {
		c := i % *clusters
		labels[i] = c
		x[i] = make([]float64, *dim)
		for t := range x[i] {
			x[i][t] = centers[c][t] + src.Norm()
		}
	}

	fmt.Printf("Barnes-Hut-SNE: %d points, %d dims, %d clusters, θ=%g, perplexity=%g\n",
		*n, *dim, *clusters, *theta, *perplexity)

	start := time.Now()
	y1, y2, err := tsne.Embed(x, tsne.Config{
		Perplexity: *perplexity,
		Iters:      *iters,
		Theta:      *theta,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded in %v (%d iterations)\n\n", time.Since(start).Round(time.Millisecond), *iters)

	render(y1, y2, labels)

	// 1-NN purity in the embedding.
	correct := 0
	for i := 0; i < *n; i++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < *n; j++ {
			if j == i {
				continue
			}
			d := (y1[i]-y1[j])*(y1[i]-y1[j]) + (y2[i]-y2[j])*(y2[i]-y2[j])
			if d < bestD {
				best, bestD = j, d
			}
		}
		if labels[best] == labels[i] {
			correct++
		}
	}
	fmt.Printf("\n1-NN purity: %.1f%% (higher is better; random ≈ %.1f%%)\n",
		100*float64(correct)/float64(*n), 100/float64(*clusters))
}

// render draws the embedding with each cell labelled by its dominant
// cluster digit.
func render(y1, y2 []float64, labels []int) {
	const w, h = 76, 26
	lo1, hi1 := minMax(y1)
	lo2, hi2 := minMax(y2)
	pad := 1e-9
	var counts [h][w]map[int]int
	for i := range y1 {
		gx := int((y1[i] - lo1) / (hi1 - lo1 + pad) * (w - 1))
		gy := int((y2[i] - lo2) / (hi2 - lo2 + pad) * (h - 1))
		if counts[gy][gx] == nil {
			counts[gy][gx] = map[int]int{}
		}
		counts[gy][gx][labels[i]]++
	}
	var sb strings.Builder
	for row := h - 1; row >= 0; row-- {
		for col := 0; col < w; col++ {
			cell := counts[row][col]
			if len(cell) == 0 {
				sb.WriteByte(' ')
				continue
			}
			bestC, bestN := 0, 0
			for c, cnt := range cell {
				if cnt > bestN {
					bestC, bestN = c, cnt
				}
			}
			sb.WriteByte(byte('0' + bestC%10))
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return
}
