// Force-directed graph layout with Barnes-Hut repulsion: the paper's second
// motivating application family (t-SNE-style 2D embeddings approximate
// their all-pairs repulsive forces exactly this way, using the quadtree of
// the paper's Figure 1).
//
// The example embeds a synthetic clustered graph: repulsion between every
// pair of vertices is approximated in O(N log N) with the concurrent
// quadtree, attraction acts along edges (Fruchterman–Reingold style), and
// the result is rendered as ASCII. Clusters should visibly separate.
//
// Usage:
//
//	go run ./examples/layout [-nodes 1200] [-clusters 4] [-iters 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"nbody/internal/par"
	"nbody/internal/quadtree"
	"nbody/internal/rng"
)

type edge struct{ a, b int32 }

func main() {
	nodes := flag.Int("nodes", 1200, "number of graph vertices")
	clusters := flag.Int("clusters", 4, "number of planted clusters")
	iters := flag.Int("iters", 150, "layout iterations")
	theta := flag.Float64("theta", 0.7, "Barnes-Hut opening threshold")
	flag.Parse()

	src := rng.New(7)
	n := *nodes
	k := *clusters

	// Planted-partition graph: dense within clusters, sparse across.
	membership := make([]int, n)
	for i := range membership {
		membership[i] = i % k
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for tries := 0; tries < 6; tries++ {
			j := src.Intn(n)
			if j == i {
				continue
			}
			sameCluster := membership[i] == membership[j]
			if sameCluster || src.Float64() < 0.02 {
				edges = append(edges, edge{int32(i), int32(j)})
			}
		}
	}

	// Random initial positions; unit weights.
	x := make([]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = src.Range(-1, 1)
		y[i] = src.Range(-1, 1)
		w[i] = 1
	}

	rt := par.NewRuntime(0, par.Dynamic)
	tree := quadtree.New(0)
	fx := make([]float64, n)
	fy := make([]float64, n)

	area := 4.0
	kOpt := math.Sqrt(area / float64(n)) // FR optimal pair distance
	repulse := func(r2 float64) float64 { return kOpt * kOpt / (r2 + 1e-9) }

	for it := 0; it < *iters; it++ {
		// O(N log N) all-pairs repulsion via the quadtree.
		if err := tree.Build(rt, x, y, w); err != nil {
			log.Fatal(err)
		}
		tree.Forces(rt, par.ParUnseq, repulse, *theta, fx, fy)

		// Attraction along edges.
		for _, e := range edges {
			dx := x[e.a] - x[e.b]
			dy := y[e.a] - y[e.b]
			d := math.Hypot(dx, dy) + 1e-12
			f := d / kOpt // FR attraction magnitude per unit vector
			fx[e.a] -= f * dx / d * kOpt
			fy[e.a] -= f * dy / d * kOpt
			fx[e.b] += f * dx / d * kOpt
			fy[e.b] += f * dy / d * kOpt
		}

		// Cooled displacement step.
		temp := 0.1 * (1 - float64(it)/float64(*iters))
		for i := 0; i < n; i++ {
			d := math.Hypot(fx[i], fy[i])
			if d == 0 {
				continue
			}
			step := math.Min(d, temp)
			x[i] += fx[i] / d * step
			y[i] += fy[i] / d * step
		}
	}

	fmt.Printf("layout of %d vertices, %d edges, %d clusters after %d iterations\n\n",
		n, len(edges), k, *iters)
	render(x, y, membership)
	fmt.Println("\n(each digit marks the densest cluster in that cell — clusters should occupy distinct regions)")
	fmt.Printf("cluster separation score: %.2f (1.0 = perfectly separated centroids)\n", separation(x, y, membership, k))
}

// render draws the embedding, labelling each cell with its dominant cluster.
func render(x, y []float64, membership []int) {
	const w, h = 72, 24
	minX, maxX := minMax(x)
	minY, maxY := minMax(y)
	pad := 1e-9
	var counts [h][w]map[int]int

	for i := range x {
		gx := int((x[i] - minX) / (maxX - minX + pad) * (w - 1))
		gy := int((y[i] - minY) / (maxY - minY + pad) * (h - 1))
		if counts[gy][gx] == nil {
			counts[gy][gx] = map[int]int{}
		}
		counts[gy][gx][membership[i]]++
	}

	var sb strings.Builder
	for row := h - 1; row >= 0; row-- {
		for col := 0; col < w; col++ {
			cell := counts[row][col]
			if len(cell) == 0 {
				sb.WriteByte(' ')
				continue
			}
			bestC, bestN := 0, 0
			for c, cnt := range cell {
				if cnt > bestN {
					bestC, bestN = c, cnt
				}
			}
			sb.WriteByte(byte('0' + bestC%10))
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}

// separation scores how far apart cluster centroids are relative to the
// average within-cluster spread.
func separation(x, y []float64, membership []int, k int) float64 {
	cx := make([]float64, k)
	cy := make([]float64, k)
	cnt := make([]float64, k)
	for i := range x {
		c := membership[i]
		cx[c] += x[i]
		cy[c] += y[i]
		cnt[c]++
	}
	for c := 0; c < k; c++ {
		if cnt[c] > 0 {
			cx[c] /= cnt[c]
			cy[c] /= cnt[c]
		}
	}
	var spread float64
	for i := range x {
		c := membership[i]
		spread += math.Hypot(x[i]-cx[c], y[i]-cy[c])
	}
	spread /= float64(len(x))

	var between float64
	pairs := 0
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			between += math.Hypot(cx[a]-cx[b], cy[a]-cy[b])
			pairs++
		}
	}
	if pairs == 0 || spread == 0 {
		return 0
	}
	return between / float64(pairs) / (spread * 2)
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return
}
