// Globular cluster evolution: integrates a Plummer sphere in virial
// equilibrium and tracks the classic structural diagnostics of stellar-
// dynamics codes — Lagrangian radii (the radii enclosing 10/25/50/75/90% of
// the mass around the density center) and the virial ratio 2T/|U|. In
// equilibrium both should hold steady; systematic drift exposes integration
// or force-approximation artifacts, making this example a long-horizon
// correctness probe as much as a demo.
//
// Usage:
//
//	go run ./examples/cluster [-n 5000] [-steps 2000] [-algo octree]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"nbody"
)

func main() {
	n := flag.Int("n", 5000, "number of stars")
	steps := flag.Int("steps", 2000, "total timesteps")
	reports := flag.Int("reports", 10, "diagnostic reports over the run")
	algoName := flag.String("algo", "octree", "force solver")
	flag.Parse()

	alg, err := nbody.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatal(err)
	}

	// Standard N-body units: G = M = 1, E = -1/4, crossing time ≈ 2√2.
	sys := nbody.NewPlummer(*n, 42)
	sim, err := nbody.NewSimulation(nbody.Config{
		Algorithm: alg,
		DT:        1e-3,
		Params:    nbody.Params{G: 1, Eps: 0.01, Theta: 0.4},
	}, sys)
	if err != nil {
		log.Fatal(err)
	}

	fracs := []float64{0.10, 0.25, 0.50, 0.75, 0.90}
	fmt.Printf("Plummer cluster: n=%d, algo=%v, dt=1e-3 (crossing time ≈ 2.83)\n\n", *n, alg)
	fmt.Printf("%8s %10s", "time", "2T/|U|")
	for _, f := range fracs {
		fmt.Printf(" %9s", fmt.Sprintf("r(%.0f%%)", f*100))
	}
	fmt.Println()

	report := func() {
		d := sim.Diagnostics(false)
		virial := 2 * d.KineticEnergy / -d.Potential
		fmt.Printf("%8.3f %10.4f", float64(sim.StepCount())*1e-3, virial)
		for _, r := range lagrangianRadii(sys, fracs) {
			fmt.Printf(" %9.4f", r)
		}
		fmt.Println()
	}

	report()
	per := max(*steps / *reports, 1)
	for s := 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
		if s%per == 0 {
			report()
		}
	}

	fmt.Println("\nexpected: virial ratio ~1 and stable Lagrangian radii (equilibrium);")
	fmt.Println("inner radii breathe slightly, outer radii grow slowly from relaxation.")
}

// lagrangianRadii returns the radii around the center of mass enclosing
// the given mass fractions.
func lagrangianRadii(sys *nbody.System, fracs []float64) []float64 {
	com := sys.CenterOfMass()
	type mr struct{ r, m float64 }
	bodies := make([]mr, sys.N())
	total := 0.0
	for i := 0; i < sys.N(); i++ {
		bodies[i] = mr{sys.Pos(i).Sub(com).Norm(), sys.Mass[i]}
		total += sys.Mass[i]
	}
	sort.Slice(bodies, func(a, b int) bool { return bodies[a].r < bodies[b].r })

	out := make([]float64, len(fracs))
	acc := 0.0
	fi := 0
	for _, b := range bodies {
		acc += b.m
		for fi < len(fracs) && acc >= fracs[fi]*total {
			out[fi] = b.r
			fi++
		}
		if fi == len(fracs) {
			break
		}
	}
	return out
}
