// Solar system validation: the paper's Section V-A experiment as a runnable
// example. Simulates a synthetic small-body catalogue (the stand-in for
// NASA JPL's Small-Body Database) for one full day with a one-hour
// timestep using the Concurrent Octree, the Hilbert BVH and — for sizes
// where it is affordable — the exact all-pairs reference, then reports the
// L2 error norm of the final positions between every pair of
// implementations (the paper requires < 10⁻⁶).
//
// Usage:
//
//	go run ./examples/solarsystem [-n 20000] [-days 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"nbody"
)

func main() {
	n := flag.Int("n", 20_000, "number of bodies (paper scale: 1039551)")
	days := flag.Float64("days", 1, "simulated time in days")
	exactMax := flag.Int("exact-max", 50_000, "largest n for which the O(N²) reference runs")
	flag.Parse()

	const dt = 1.0 / 24 // one hour, in days
	steps := int(math.Round(*days / dt))
	params := nbody.Params{G: nbody.GSolar, Eps: 0, Theta: 0.5}

	fmt.Printf("synthetic JPL small-body catalogue: n=%d, %v day(s), dt=1h (%d steps)\n\n", *n, *days, steps)

	run := func(alg nbody.Algorithm) ([][3]float64, time.Duration) {
		sys := nbody.NewSolarSystemBelt(*n, 2024)
		sim, err := nbody.NewSimulation(nbody.Config{Algorithm: alg, DT: dt, Params: params}, sys)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := sim.Run(steps); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		// Undo the Hilbert sort's permutation by body ID.
		pos := make([][3]float64, *n)
		for i := 0; i < sys.N(); i++ {
			pos[sys.ID[i]] = [3]float64{sys.PosX[i], sys.PosY[i], sys.PosZ[i]}
		}
		fmt.Printf("%-12v %10v  (%.3g bodies·steps/s)\n", alg, elapsed.Round(time.Millisecond),
			float64(*n)*float64(steps)/elapsed.Seconds())
		return pos, elapsed
	}

	algs := []nbody.Algorithm{nbody.Octree, nbody.BVH}
	if *n <= *exactMax {
		algs = append(algs, nbody.AllPairs)
	}
	results := make(map[nbody.Algorithm][][3]float64, len(algs))
	times := make(map[nbody.Algorithm]time.Duration, len(algs))
	for _, alg := range algs {
		results[alg], times[alg] = run(alg)
	}

	fmt.Println("\npairwise RMS L2 error of final positions [AU]:")
	for i := 0; i < len(algs); i++ {
		for j := i + 1; j < len(algs); j++ {
			var sum2 float64
			a, b := results[algs[i]], results[algs[j]]
			for k := range a {
				for c := 0; c < 3; c++ {
					d := a[k][c] - b[k][c]
					sum2 += d * d
				}
			}
			l2 := math.Sqrt(sum2 / float64(*n))
			verdict := "PASS"
			if l2 >= 1e-6 {
				verdict = "FAIL"
			}
			fmt.Printf("  %-10v vs %-10v %.3e  [%s, threshold 1e-6]\n", algs[i], algs[j], l2, verdict)
		}
	}

	fmt.Printf("\nOctree vs BVH speed: %.2fx (paper: 3.3x on H100)\n",
		times[nbody.BVH].Seconds()/times[nbody.Octree].Seconds())
}
