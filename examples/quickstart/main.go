// Quickstart: the smallest complete use of the public API — build the
// paper's galaxy-collision workload, simulate it with the Concurrent
// Octree, and watch the conservation diagnostics.
package main

import (
	"fmt"
	"log"

	"nbody"
)

func main() {
	// A deterministic two-galaxy collision with 10,000 bodies.
	sys := nbody.NewGalaxyCollision(10_000, 42)

	sim, err := nbody.NewSimulation(nbody.Config{
		Algorithm: nbody.Octree,          // or nbody.BVH, nbody.AllPairs, …
		DT:        1e-5,                  // timestep in simulation units
		Params:    nbody.DefaultParams(), // θ=0.5, G=1, small softening
	}, sys)
	if err != nil {
		log.Fatal(err)
	}

	before := sim.Diagnostics(false)
	fmt.Printf("initial: E=%.6e  M=%.6e\n", before.TotalEnergy, before.Mass)

	if err := sim.Run(100); err != nil {
		log.Fatal(err)
	}

	after := sim.Diagnostics(false)
	fmt.Printf("after %d steps: E=%.6e  M=%.6e\n", sim.StepCount(), after.TotalEnergy, after.Mass)
	fmt.Printf("relative energy drift: %.3e\n",
		(after.TotalEnergy-before.TotalEnergy)/before.TotalEnergy)

	fmt.Println("\nwhere the time went:")
	fmt.Println(sim.Breakdown())
}
