// Accuracy study: quantifies the paper's observation (end of Section IV-B)
// that the opening threshold θ means different things for the Concurrent
// Octree and the Hilbert BVH — elongated, overlapping BVH boxes admit more
// far-field error at the same θ — and shows how the quadrupole extension
// and the BVH's conservative box-distance criterion shift the
// accuracy/cost trade-off.
//
// For a Plummer sphere, the example sweeps θ and prints, per solver
// variant, the mean force error against the exact O(N²) reference and the
// relative force-evaluation time.
//
// Usage:
//
//	go run ./examples/accuracy [-n 5000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nbody/internal/allpairs"
	"nbody/internal/body"
	"nbody/internal/bounds"
	"nbody/internal/bvh"
	"nbody/internal/grav"
	"nbody/internal/kdtree"
	"nbody/internal/octree"
	"nbody/internal/par"
	"nbody/internal/workload"
)

func main() {
	n := flag.Int("n", 5000, "number of bodies")
	flag.Parse()

	rt := par.NewRuntime(0, par.Dynamic)
	base := workload.Plummer(*n, 42)

	// Exact reference.
	ref := base.Clone()
	refParams := grav.Params{G: 1, Eps: 1e-4, Theta: 0}
	start := time.Now()
	allpairs.AllPairs(rt, par.ParUnseq, ref, refParams)
	exactTime := time.Since(start)
	fmt.Printf("accuracy study: n=%d Plummer sphere; exact all-pairs reference took %v\n\n", *n, exactTime.Round(time.Millisecond))

	var meanMag float64
	for i := 0; i < ref.N(); i++ {
		meanMag += ref.Acc(i).Norm()
	}
	meanMag /= float64(ref.N())

	type variant struct {
		name string
		run  func(s *body.System, p grav.Params) time.Duration
	}
	variants := []variant{
		{"octree (monopole)", func(s *body.System, p grav.Params) time.Duration {
			return runOctree(rt, s, p, octree.Config{})
		}},
		{"octree (quadrupole)", func(s *body.System, p grav.Params) time.Duration {
			return runOctree(rt, s, p, octree.Config{Quadrupole: true})
		}},
		{"bvh (center-dist)", func(s *body.System, p grav.Params) time.Duration {
			return runBVH(rt, s, p, bvh.Config{})
		}},
		{"bvh (box-dist)", func(s *body.System, p grav.Params) time.Duration {
			return runBVH(rt, s, p, bvh.Config{Criterion: bvh.BoxDistance})
		}},
		{"kdtree (single)", func(s *body.System, p grav.Params) time.Duration {
			return runKD(rt, s, p, false)
		}},
		{"kdtree (dual)", func(s *body.System, p grav.Params) time.Duration {
			return runKD(rt, s, p, true)
		}},
	}

	fmt.Printf("%-22s %8s %14s %12s\n", "variant", "θ", "mean error", "force time")
	fmt.Println(separator(60))
	for _, theta := range []float64{0.3, 0.5, 0.8} {
		for _, v := range variants {
			s := base.Clone()
			p := grav.Params{G: 1, Eps: 1e-4, Theta: theta}
			elapsed := v.run(s, p)

			// Mean normalized force error vs the exact reference
			// (bodies matched by ID — tree solvers permute).
			errByID := make([]float64, s.N())
			for i := 0; i < s.N(); i++ {
				id := s.ID[i]
				d := s.Acc(i).Sub(ref.Acc(int(id))).Norm()
				errByID[id] = d / (ref.Acc(int(id)).Norm() + 0.1*meanMag)
			}
			var mean float64
			for _, e := range errByID {
				mean += e
			}
			mean /= float64(len(errByID))

			fmt.Printf("%-22s %8.2f %14.3e %12v\n", v.name, theta, mean, elapsed.Round(time.Microsecond))
		}
		fmt.Println(separator(60))
	}
	fmt.Println("\nreadings: at equal θ the octree is more accurate than the BVH (compact")
	fmt.Println("cubic cells vs elongated boxes — the paper's §IV-B note); box-distance")
	fmt.Println("closes part of that gap; quadrupoles cut the error by ~an order of")
	fmt.Println("magnitude; the dual-tree trades accuracy for symmetric interactions.")
}

func runOctree(rt *par.Runtime, s *body.System, p grav.Params, cfg octree.Config) time.Duration {
	tree := octree.New(cfg)
	box := bounds.OfPositions(rt, par.ParUnseq, s.PosX, s.PosY, s.PosZ)
	if err := tree.Build(rt, s, box); err != nil {
		log.Fatal(err)
	}
	tree.ComputeMoments(rt, s)
	start := time.Now()
	tree.Accelerations(rt, par.ParUnseq, s, p)
	return time.Since(start)
}

func runBVH(rt *par.Runtime, s *body.System, p grav.Params, cfg bvh.Config) time.Duration {
	tree := bvh.New(cfg)
	box := bounds.OfPositions(rt, par.ParUnseq, s.PosX, s.PosY, s.PosZ)
	tree.Build(rt, par.ParUnseq, s, box)
	start := time.Now()
	tree.Accelerations(rt, par.ParUnseq, s, p)
	return time.Since(start)
}

func runKD(rt *par.Runtime, s *body.System, p grav.Params, dual bool) time.Duration {
	tree := kdtree.New(kdtree.Config{})
	tree.Build(rt, s)
	start := time.Now()
	if dual {
		tree.DualAccelerations(rt, s, p)
	} else {
		tree.Accelerations(rt, par.ParUnseq, s, p)
	}
	return time.Since(start)
}

func separator(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '-'
	}
	return string(s)
}
