// Galaxy collision: the paper's evaluation workload run as a small
// application. Simulates two colliding disk galaxies, renders the disk in
// the terminal as ASCII density frames, and optionally dumps CSV snapshots
// for external plotting.
//
// Usage:
//
//	go run ./examples/galaxy [-n 20000] [-steps 400] [-algo bvh] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nbody"
)

func main() {
	n := flag.Int("n", 20_000, "number of bodies")
	steps := flag.Int("steps", 300, "total timesteps")
	frames := flag.Int("frames", 6, "ASCII frames to print")
	algoName := flag.String("algo", "octree", "octree, bvh, all-pairs, all-pairs-col")
	csvPath := flag.String("csv", "", "write position snapshots to this CSV file")
	flag.Parse()

	alg, err := nbody.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatal(err)
	}

	sys := nbody.NewGalaxyCollision(*n, 42)
	sim, err := nbody.NewSimulation(nbody.Config{Algorithm: alg, DT: 2e-5}, sys)
	if err != nil {
		log.Fatal(err)
	}

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer csv.Close()
		fmt.Fprintln(csv, "step,id,x,y,z")
	}

	e0 := sim.Diagnostics(false).TotalEnergy
	perFrame := max(*steps / *frames, 1)

	fmt.Printf("galaxy collision: n=%d algo=%v steps=%d\n", *n, alg, *steps)
	render(sys, 0)

	for s := 1; s <= *steps; s++ {
		if err := sim.Step(); err != nil {
			log.Fatal(err)
		}
		if s%perFrame == 0 {
			render(sys, s)
			d := sim.Diagnostics(false)
			fmt.Printf("step %-5d E=%.4e (drift %+.2e)  |p|=%.3e\n\n",
				s, d.TotalEnergy, (d.TotalEnergy-e0)/e0, d.Momentum.Norm())
			if csv != nil {
				for i := 0; i < sys.N(); i++ {
					fmt.Fprintf(csv, "%d,%d,%.6g,%.6g,%.6g\n", s, sys.ID[i], sys.PosX[i], sys.PosY[i], sys.PosZ[i])
				}
			}
		}
	}
}

// render draws an ASCII density map of the xy plane.
func render(sys *nbody.System, step int) {
	const w, h = 72, 24
	var grid [h][w]int

	// Fixed view window sized to the initial configuration so motion is
	// visible across frames.
	const half = 18.0
	for i := 0; i < sys.N(); i++ {
		gx := int((sys.PosX[i] + half) / (2 * half) * w)
		gy := int((sys.PosY[i] + half) / (2 * half) * h)
		if gx >= 0 && gx < w && gy >= 0 && gy < h {
			grid[gy][gx]++
		}
	}

	shades := []byte(" .:-=+*#%@")
	var sb strings.Builder
	fmt.Fprintf(&sb, "── step %d %s\n", step, strings.Repeat("─", w-10))
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			level := grid[y][x]
			idx := 0
			for level > 0 && idx < len(shades)-1 {
				level /= 2
				idx++
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}
