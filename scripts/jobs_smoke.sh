#!/usr/bin/env sh
# jobs_smoke.sh — end-to-end batch-job smoke test.
#
# Boots the real nbody-serve binary with a scratch state directory, submits
# a batch job through POST /v1/jobs, waits for it to succeed, downloads
# both artifacts, and asserts that GET /metrics exposes the job queue's
# series (queue depth, per-class wait/run histograms, retry counter) and
# that the error envelope carries the stable job_not_found code.
set -eu

PORT="${NBODY_SMOKE_PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
BIN="$WORK/nbody-serve"
LOG="$WORK/serve.log"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/nbody-serve

"$BIN" -addr "127.0.0.1:$PORT" -log-format=json \
    -state-dir "$WORK/state" -job-workers 2 -job-chunk 50 >"$LOG" 2>&1 &
SRV_PID=$!

i=0
until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "jobs-smoke: server did not become ready; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# Submit a high-class batch job: 120 steps in 50-step checkpoint chunks.
ID=$(curl -fsS -X POST "$BASE/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":256,"dt":0.001,"steps":120,"class":"high"}' |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "jobs-smoke: submit returned no job id" >&2; exit 1; }

# Poll until the job reaches a terminal state.
i=0
while :; do
    STATE=$(curl -fsS "$BASE/v1/jobs/$ID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$STATE" = "succeeded" ] && break
    case "$STATE" in
    failed | cancelled)
        echo "jobs-smoke: job $ID finished $STATE" >&2
        curl -s "$BASE/v1/jobs/$ID" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "jobs-smoke: job $ID stuck in '$STATE'; log:" >&2
        tail -20 "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# Artifacts: the binary snapshot (magic NBODYSNP) and the CSV trace.
curl -fsS "$BASE/v1/jobs/$ID/snapshot" -o "$WORK/final.nbsnap"
head -c 8 "$WORK/final.nbsnap" | grep -q NBODYSNP || {
    echo "jobs-smoke: snapshot artifact lacks the NBODYSNP magic" >&2
    exit 1
}
curl -fsS "$BASE/v1/jobs/$ID/trace" | head -1 | grep -q step || {
    echo "jobs-smoke: trace artifact has no CSV header" >&2
    exit 1
}

# The scrape must expose the job queue's series, populated by the run.
METRICS=$(curl -fsS "$BASE/metrics")
for series in \
    'nbody_jobs_queue_depth{class="high"} 0' \
    'nbody_jobs_submitted_total{class="high"} 1' \
    'nbody_jobs_finished_total{state="succeeded"} 1' \
    'nbody_job_wait_seconds_count{class="high"} 1' \
    'nbody_job_run_seconds_count{class="high"} 1' \
    'nbody_jobs_running 0' \
    'nbody_job_retries_total 0'; do
    if ! printf '%s\n' "$METRICS" | grep -qF "$series"; then
        echo "jobs-smoke: /metrics missing series: $series" >&2
        printf '%s\n' "$METRICS" | grep nbody_job | head -40 >&2
        exit 1
    fi
done

# Error envelope sanity: a missing job answers with the stable code.
CODE=$(curl -s "$BASE/v1/jobs/nope" | sed -n 's/.*"code":"\([^"]*\)".*/\1/p')
[ "$CODE" = "job_not_found" ] || {
    echo "jobs-smoke: 404 envelope code '$CODE', want job_not_found" >&2
    exit 1
}

# The job record survived in the state directory's jobs/ store.
ls "$WORK/state/jobs/$ID.json" >/dev/null 2>&1 || {
    echo "jobs-smoke: no durable job record at state/jobs/$ID.json" >&2
    exit 1
}

echo "jobs-smoke: ok (job $ID succeeded, artifacts and job metrics verified)"
