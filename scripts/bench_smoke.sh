#!/usr/bin/env sh
# bench_smoke.sh — short seq-vs-par benchmark sanity check under the race
# detector.
#
# Builds cmd/nbody-bench with -race and runs a two-step N=2048 fig5 pass
# over the tree algorithms in both layouts. This is a correctness gate,
# not a performance one: it drives the flat interaction-list kernels, the
# walk kernels and the tree-reuse machinery through the real harness with
# the race detector watching, and asserts only that every expected row
# comes back with a positive throughput (race builds are ~10-20x slower,
# so speedups are meaningless here and not checked).
#
# Usage: ./scripts/bench_smoke.sh  (or: make bench-smoke)
set -eu

cd "$(dirname "$0")/.."

N=2048
STEPS=2
ALGS=octree,bvh
SEED=42

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM

go build -race -o "$WORK/nbody-bench" ./cmd/nbody-bench

for layout in flat walk; do
    echo "bench-smoke: fig5 n=$N layout=$layout (race)"
    "$WORK/nbody-bench" fig5 \
        -n "$N" -steps "$STEPS" -repeats 1 -workers 2 -seed "$SEED" \
        -algs "$ALGS" -layout "$layout" -csv >"$WORK/$layout.csv"

    # Every algorithm must produce a seq and a par row with bodies/s > 0.
    awk -v layout="$layout" 'BEGIN { FS = "," }
    !header && $1 == "algorithm" { header = 1; next }
    header && ($2 == "seq" || $2 == "par") {
        if ($3 + 0 <= 0) {
            printf "bench-smoke: %s/%s/%s: non-positive throughput %s\n", layout, $1, $2, $3 > "/dev/stderr"
            bad = 1
        }
        rows++
    }
    END {
        if (rows != 4) {
            printf "bench-smoke: layout %s: got %d rows, want 4 (octree+bvh x seq+par)\n", layout, rows > "/dev/stderr"
            bad = 1
        }
        exit bad
    }' "$WORK/$layout.csv"
done

# Adaptive tree reuse under race: the refit/rebuild equivalence and golden
# accuracy tests drive the refit kernels and drift bookkeeping with the
# race detector watching.
echo "bench-smoke: tree-reuse + golden accuracy (race)"
go test -race -run 'TestRefitMatchesRebuild|TestRefitFallsBackOnFastBodies|TestGoldenL2SolarValidation' ./internal/core/

echo "bench-smoke: OK"
