#!/usr/bin/env sh
# bench_baseline.sh — committed performance baseline.
#
# Runs cmd/nbody-bench fig5 (sequential vs parallel throughput per
# algorithm) on a pinned small configuration and rewrites BENCH_serve.json
# at the repository root. The file is committed so a later PR can diff its
# own numbers against the last recorded baseline on comparable hardware;
# the config is deliberately tiny so the whole run stays under a minute on
# a laptop.
#
# Usage: ./scripts/bench_baseline.sh  (or: make bench-baseline)
set -eu

cd "$(dirname "$0")/.."

# Pinned configuration — change it only deliberately, in its own commit,
# because every future comparison assumes these values.
N=2048
STEPS=5
REPEATS=2
WORKERS=2
SEED=42
OUT=BENCH_serve.json

CSV="$(mktemp)"
trap 'rm -f "$CSV"' EXIT INT TERM

go run ./cmd/nbody-bench fig5 \
    -n "$N" -steps "$STEPS" -repeats "$REPEATS" -workers "$WORKERS" -seed "$SEED" \
    -csv >"$CSV"

# Convert the benchmark CSV (header row + data rows) into a JSON document
# carrying the pinned config and environment alongside the measurements.
awk -v n="$N" -v steps="$STEPS" -v repeats="$REPEATS" -v workers="$WORKERS" \
    -v seed="$SEED" -v goversion="$(go env GOVERSION)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { FS = "," }
# Skip anything before the CSV header (the experiment banner line).
!header && $1 == "algorithm" {
    header = 1
    for (i = 1; i <= NF; i++) keys[i] = $i
    next
}
header && NF > 1 {
    row = ""
    for (i = 1; i <= NF; i++) {
        k = keys[i]
        gsub(/[^a-zA-Z0-9]+/, "_", k)  # "bodies/s" -> "bodies_s"
        v = $i
        if (v ~ /^-?[0-9.eE+]+$/) row = row sprintf("\"%s\":%s,", k, v)
        else row = row sprintf("\"%s\":\"%s\",", k, v)
    }
    sub(/,$/, "", row)
    rows[++nrows] = "    {" row "}"
}
END {
    if (nrows == 0) { print "bench-baseline: no CSV rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"benchmark\": \"fig5\",\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"config\": {\"n\": %d, \"steps\": %d, \"repeats\": %d, \"workers\": %d, \"seed\": %d},\n", \
        n, steps, repeats, workers, seed
    printf "  \"rows\": [\n"
    for (i = 1; i <= nrows; i++) printf "%s%s\n", rows[i], (i < nrows ? "," : "")
    printf "  ]\n}\n"
}' "$CSV" >"$OUT"

# Service-level rows: boot the real server and drive a short mixed load
# through cmd/nbody-loadgen (via the client SDK), then splice the report
# into the baseline as a "service" section so the committed file also
# tracks client-observed latency quantiles and shed rate per traffic
# class. The loadgen config is pinned for the same reason the fig5 one is.
PORT="${NBODY_BENCH_PORT:-18083}"
WORK="$(mktemp -d)"
trap 'rm -f "$CSV"; [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/nbody-serve" ./cmd/nbody-serve
go build -o "$WORK/nbody-loadgen" ./cmd/nbody-loadgen

"$WORK/nbody-serve" -addr "127.0.0.1:$PORT" -log-format=json \
    -state-dir "$WORK/state" -job-workers 2 >"$WORK/serve.log" 2>&1 &
SRV_PID=$!

"$WORK/nbody-loadgen" -addr "http://127.0.0.1:$PORT" -wait-ready 10s \
    -rps 40 -duration 5s -workers 32 -sessions 6 \
    -mix 'step=8,job=1,watch=1' \
    -n "$N" -dt 0.001 -step-batch "$STEPS" -watch-steps 10 -watch-every 5 \
    -job-steps 50 -job-class low -seed "$SEED" \
    -out "$WORK/service.json" >/dev/null || {
    echo "bench-baseline: loadgen failed; server log:" >&2
    tail -20 "$WORK/serve.log" >&2
    exit 1
}

# Splice: drop the document's closing brace, append the service section.
sed '$d' "$OUT" >"$WORK/bench.tmp"
{
    cat "$WORK/bench.tmp"
    printf '  ,"service":\n'
    sed 's/^/  /' "$WORK/service.json"
    printf '}\n'
} >"$OUT"

echo "bench-baseline: wrote $OUT ($(grep -c '"algorithm"' "$OUT") fig5 rows + service section)"
