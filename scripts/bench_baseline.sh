#!/usr/bin/env sh
# bench_baseline.sh — committed performance baseline.
#
# Runs cmd/nbody-bench fig5 (sequential vs parallel throughput per
# algorithm) on a pinned small configuration plus a pinned large-N tree
# configuration, and rewrites BENCH_serve.json at the repository root. The
# file is committed so a later PR can diff its own numbers against the
# last recorded baseline on comparable hardware; the small config is
# deliberately tiny so the whole run stays under a minute on a laptop.
#
# The script also gates on parallel speedup: any `par` row whose speedup
# over its `seq` sibling falls below 1.0x fails the run, so a parallelism
# regression cannot be silently committed into the baseline. Below 4
# cores the comparison is meaningless (the par rows share one or two
# cores with the harness itself), so the gate auto-records as `skipped`
# instead of requiring a hand override. On bigger machines that are
# heavily shared, pass --allow-par-regression or set
# ALLOW_PAR_REGRESSION=1; the override is recorded in the output.
#
# Usage: ./scripts/bench_baseline.sh [--allow-par-regression]
#        (or: make bench-baseline)
set -eu

cd "$(dirname "$0")/.."

ALLOW="${ALLOW_PAR_REGRESSION:-0}"
for arg in "$@"; do
    case "$arg" in
    --allow-par-regression) ALLOW=1 ;;
    *)
        echo "bench-baseline: unknown argument $arg" >&2
        echo "usage: $0 [--allow-par-regression]" >&2
        exit 2
        ;;
    esac
done

# Pinned configuration — change it only deliberately, in its own commit,
# because every future comparison assumes these values.
N=2048
STEPS=5
REPEATS=2
WORKERS=2
SEED=42
# Large-N tree section: the interaction-list layout's target regime. The
# O(N²) baselines are excluded to keep the runtime bounded.
N_LARGE=100000
STEPS_LARGE=2
REPEATS_LARGE=1
ALGS_LARGE=octree,bvh
OUT=BENCH_serve.json

CSV="$(mktemp)"
CSV_LARGE="$(mktemp)"
trap 'rm -f "$CSV" "$CSV_LARGE"' EXIT INT TERM

go run ./cmd/nbody-bench fig5 \
    -n "$N" -steps "$STEPS" -repeats "$REPEATS" -workers "$WORKERS" -seed "$SEED" \
    -csv >"$CSV"

go run ./cmd/nbody-bench fig5 \
    -n "$N_LARGE" -steps "$STEPS_LARGE" -repeats "$REPEATS_LARGE" \
    -workers "$WORKERS" -seed "$SEED" -algs "$ALGS_LARGE" \
    -csv >"$CSV_LARGE"

# Seq-vs-par comparison and speedup gate over both sections. The fig5 CSV
# carries the ratio in its `speedup` column; par rows must not fall below
# 1.0x their seq sibling.
CORES="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
gate_status=pass
for f in "$CSV" "$CSV_LARGE"; do
    awk 'BEGIN { FS = "," }
    !header && $1 == "algorithm" { header = 1; next }
    header && $2 == "seq" { seq[$1] = $3 }
    header && $2 == "par" {
        printf "bench-baseline: %-14s seq=%.0f par=%.0f bodies/s  speedup=%.3fx\n", $1, seq[$1], $3, $5
        if ($5 + 0 < 1.0) { bad = 1 }
    }
    END { exit bad }' "$f" || gate_status=fail
done
if [ "$CORES" -lt 4 ]; then
    # Too few cores for the seq-vs-par comparison to mean anything:
    # record the gate as skipped rather than failing or demanding a
    # hand override.
    gate_status=skipped
    echo "bench-baseline: $CORES core(s) < 4, speedup gate skipped" >&2
elif [ "$gate_status" = fail ]; then
    if [ "$ALLOW" = 1 ]; then
        gate_status=overridden
        echo "bench-baseline: WARNING: par speedup < 1.0x, continuing (--allow-par-regression)" >&2
    else
        echo "bench-baseline: FAIL: par speedup < 1.0x for at least one algorithm" >&2
        echo "bench-baseline: rerun with --allow-par-regression to record anyway" >&2
        exit 1
    fi
fi

# Convert a benchmark CSV (header row + data rows) into a JSON row array
# on stdout.
csv_rows() {
    awk '
    BEGIN { FS = "," }
    # Skip anything before the CSV header (the experiment banner line).
    !header && $1 == "algorithm" {
        header = 1
        for (i = 1; i <= NF; i++) keys[i] = $i
        next
    }
    header && NF > 1 {
        row = ""
        for (i = 1; i <= NF; i++) {
            k = keys[i]
            gsub(/[^a-zA-Z0-9]+/, "_", k)  # "bodies/s" -> "bodies_s"
            v = $i
            if (v ~ /^-?[0-9.eE+]+$/) row = row sprintf("\"%s\":%s,", k, v)
            else row = row sprintf("\"%s\":\"%s\",", k, v)
        }
        sub(/,$/, "", row)
        rows[++nrows] = "    {" row "}"
    }
    END {
        if (nrows == 0) { print "bench-baseline: no CSV rows parsed" > "/dev/stderr"; exit 1 }
        for (i = 1; i <= nrows; i++) printf "%s%s\n", rows[i], (i < nrows ? "," : "")
    }' "$1"
}

{
    printf '{\n'
    printf '  "benchmark": "fig5",\n'
    printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "speedup_gate": "%s",\n' "$gate_status"
    printf '  "cores": %s,\n' "$CORES"
    printf '  "config": {"n": %d, "steps": %d, "repeats": %d, "workers": %d, "seed": %d},\n' \
        "$N" "$STEPS" "$REPEATS" "$WORKERS" "$SEED"
    printf '  "rows": [\n'
    csv_rows "$CSV"
    printf '  ],\n'
    printf '  "config_large": {"n": %d, "steps": %d, "repeats": %d, "workers": %d, "seed": %d, "algs": "%s"},\n' \
        "$N_LARGE" "$STEPS_LARGE" "$REPEATS_LARGE" "$WORKERS" "$SEED" "$ALGS_LARGE"
    printf '  "rows_large": [\n'
    csv_rows "$CSV_LARGE"
    printf '  ]\n}\n'
} >"$OUT"

# Service-level rows: boot the real server and drive a short mixed load
# through cmd/nbody-loadgen (via the client SDK), then splice the report
# into the baseline as a "service" section so the committed file also
# tracks client-observed latency quantiles and shed rate per traffic
# class. The loadgen config is pinned for the same reason the fig5 one is.
PORT="${NBODY_BENCH_PORT:-18083}"
WORK="$(mktemp -d)"
trap 'rm -f "$CSV" "$CSV_LARGE"; [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/nbody-serve" ./cmd/nbody-serve
go build -o "$WORK/nbody-loadgen" ./cmd/nbody-loadgen

"$WORK/nbody-serve" -addr "127.0.0.1:$PORT" -log-format=json \
    -state-dir "$WORK/state" -job-workers 2 >"$WORK/serve.log" 2>&1 &
SRV_PID=$!

"$WORK/nbody-loadgen" -addr "http://127.0.0.1:$PORT" -wait-ready 10s \
    -rps 40 -duration 5s -workers 32 -sessions 6 \
    -mix 'step=8,job=1,watch=1' \
    -n "$N" -dt 0.001 -step-batch "$STEPS" -watch-steps 10 -watch-every 5 \
    -job-steps 50 -job-class low -seed "$SEED" \
    -out "$WORK/service.json" >/dev/null || {
    echo "bench-baseline: loadgen failed; server log:" >&2
    tail -20 "$WORK/serve.log" >&2
    exit 1
}

# Splice: drop the document's closing brace, append the service section.
sed '$d' "$OUT" >"$WORK/bench.tmp"
{
    cat "$WORK/bench.tmp"
    printf '  ,"service":\n'
    sed 's/^/  /' "$WORK/service.json"
    printf '}\n'
} >"$OUT"

# Pipelined stepping section: the same server, step-only traffic over a
# small session pool at the pinned N, once on the whole-step slot path and
# once with config.pipeline=true, so the committed file tracks
# multi-session steps/s for both scheduling modes. The /v1/metrics
# snapshot taken after the pipelined pass is embedded too — its `exec`
# object carries the phase-graph executor's occupancy, per-phase task
# counts and overlap/stall integrals for the run just recorded.
PIPE_SESSIONS=4
PIPE_BATCH=5
PIPE_DURATION=4s

pipeline_pass() { # $1 = report file, rest = extra loadgen flags
    rep="$1"
    shift
    "$WORK/nbody-loadgen" -addr "http://127.0.0.1:$PORT" \
        -rps 30 -duration "$PIPE_DURATION" -workers 16 \
        -sessions "$PIPE_SESSIONS" -mix 'step=1' \
        -n "$N" -dt 0.001 -step-batch "$PIPE_BATCH" -seed "$SEED" \
        "$@" -out "$rep" >/dev/null || {
        echo "bench-baseline: pipeline loadgen failed; server log:" >&2
        tail -20 "$WORK/serve.log" >&2
        exit 1
    }
}

pipeline_pass "$WORK/pipe_off.json"
pipeline_pass "$WORK/pipe_on.json" -pipeline

curl -fsS "http://127.0.0.1:$PORT/v1/metrics" >"$WORK/metrics.json"
curl -fsS "http://127.0.0.1:$PORT/metrics" | grep '^nbody_exec_' >"$WORK/exec_series.txt"

# Client-observed stepping throughput of one report: completed step
# requests x steps per request / duration. The step class is the only one
# in the mix, and Classes precedes Totals in the report, so the first
# "ok" field is the step class's.
steps_per_sec() {
    awk -v batch="$PIPE_BATCH" '
    /"duration_seconds"/ { dur = $2 + 0 }
    !ok && /"ok"/ { gsub(/[^0-9]/, "", $2); ok = $2 + 0 }
    END { if (dur > 0) printf "%.1f", ok * batch / dur; else printf "0" }' "$1"
}

sed '$d' "$OUT" >"$WORK/bench.tmp"
{
    cat "$WORK/bench.tmp"
    printf '  ,"pipeline": {\n'
    printf '    "config": {"n": %d, "sessions": %d, "step_batch": %d, "duration": "%s", "mix": "step=1"},\n' \
        "$N" "$PIPE_SESSIONS" "$PIPE_BATCH" "$PIPE_DURATION"
    printf '    "steps_per_second": {"off": %s, "on": %s},\n' \
        "$(steps_per_sec "$WORK/pipe_off.json")" "$(steps_per_sec "$WORK/pipe_on.json")"
    printf '    "off":\n'
    sed 's/^/    /' "$WORK/pipe_off.json"
    printf '    ,"on":\n'
    sed 's/^/    /' "$WORK/pipe_on.json"
    printf '    ,"metrics_after": %s\n' "$(cat "$WORK/metrics.json")"
    printf '    ,"exporter_series": [\n'
    awk '{ gsub(/\\/, "\\\\"); gsub(/"/, "\\\"")
           printf "%s      \"%s\"", (NR > 1 ? ",\n" : ""), $0 }
         END { printf "\n" }' "$WORK/exec_series.txt"
    printf '    ]\n  }\n}\n'
} >"$OUT"

echo "bench-baseline: wrote $OUT ($(grep -c '"algorithm"' "$OUT") fig5 rows + service + pipeline sections, gate=$gate_status)"
