#!/usr/bin/env sh
# bench_baseline.sh — committed performance baseline.
#
# Runs cmd/nbody-bench fig5 (sequential vs parallel throughput per
# algorithm) on a pinned small configuration and rewrites BENCH_serve.json
# at the repository root. The file is committed so a later PR can diff its
# own numbers against the last recorded baseline on comparable hardware;
# the config is deliberately tiny so the whole run stays under a minute on
# a laptop.
#
# Usage: ./scripts/bench_baseline.sh  (or: make bench-baseline)
set -eu

cd "$(dirname "$0")/.."

# Pinned configuration — change it only deliberately, in its own commit,
# because every future comparison assumes these values.
N=2048
STEPS=5
REPEATS=2
WORKERS=2
SEED=42
OUT=BENCH_serve.json

CSV="$(mktemp)"
trap 'rm -f "$CSV"' EXIT INT TERM

go run ./cmd/nbody-bench fig5 \
    -n "$N" -steps "$STEPS" -repeats "$REPEATS" -workers "$WORKERS" -seed "$SEED" \
    -csv >"$CSV"

# Convert the benchmark CSV (header row + data rows) into a JSON document
# carrying the pinned config and environment alongside the measurements.
awk -v n="$N" -v steps="$STEPS" -v repeats="$REPEATS" -v workers="$WORKERS" \
    -v seed="$SEED" -v goversion="$(go env GOVERSION)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { FS = "," }
# Skip anything before the CSV header (the experiment banner line).
!header && $1 == "algorithm" {
    header = 1
    for (i = 1; i <= NF; i++) keys[i] = $i
    next
}
header && NF > 1 {
    row = ""
    for (i = 1; i <= NF; i++) {
        k = keys[i]
        gsub(/[^a-zA-Z0-9]+/, "_", k)  # "bodies/s" -> "bodies_s"
        v = $i
        if (v ~ /^-?[0-9.eE+]+$/) row = row sprintf("\"%s\":%s,", k, v)
        else row = row sprintf("\"%s\":\"%s\",", k, v)
    }
    sub(/,$/, "", row)
    rows[++nrows] = "    {" row "}"
}
END {
    if (nrows == 0) { print "bench-baseline: no CSV rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"benchmark\": \"fig5\",\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"config\": {\"n\": %d, \"steps\": %d, \"repeats\": %d, \"workers\": %d, \"seed\": %d},\n", \
        n, steps, repeats, workers, seed
    printf "  \"rows\": [\n"
    for (i = 1; i <= nrows; i++) printf "%s%s\n", rows[i], (i < nrows ? "," : "")
    printf "  ]\n}\n"
}' "$CSV" >"$OUT"

echo "bench-baseline: wrote $OUT ($(grep -c '"algorithm"' "$OUT") rows)"
