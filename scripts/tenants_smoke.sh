#!/usr/bin/env sh
# tenants_smoke.sh — end-to-end multi-tenant smoke test.
#
# Boots the real nbody-serve binary with a two-tenant keyfile, then
# asserts the tenant boundary over plain HTTP: unauthenticated and
# wrong-key requests answer 401 with the stable envelope and a challenge,
# each key is stamped with its own X-NBody-Tenant, the per-tenant session
# quota sheds with a 429 + Retry-After while the other tenant keeps
# working, a scenario-pack job submitted by name runs to completion
# attributed to its tenant, and GET /metrics exposes the per-tenant
# series.
set -eu

PORT="${NBODY_SMOKE_PORT:-18084}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
BIN="$WORK/nbody-serve"
LOG="$WORK/serve.log"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/nbody-serve

# Two tenants: alice capped at one live session, bob unconstrained.
cat >"$WORK/tenants.json" <<'EOF'
[
  {"name": "alice", "key": "smoke-key-alice", "max_sessions": 1},
  {"name": "bob", "key": "smoke-key-bob", "max_queued_jobs": 4}
]
EOF

"$BIN" -addr "127.0.0.1:$PORT" -log-format=json \
    -tenants "$WORK/tenants.json" -job-workers 1 >"$LOG" 2>&1 &
SRV_PID=$!

i=0
until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "tenants-smoke: server did not become ready; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# No key: 401 with the stable envelope code and a bearer challenge.
RESP=$(curl -s -i "$BASE/v1/sessions")
printf '%s\n' "$RESP" | grep -q "401" || {
    echo "tenants-smoke: unauthenticated request did not answer 401" >&2
    exit 1
}
printf '%s\n' "$RESP" | grep -qi 'WWW-Authenticate: Bearer' || {
    echo "tenants-smoke: 401 lacks the WWW-Authenticate challenge" >&2
    exit 1
}
printf '%s\n' "$RESP" | grep -q '"code":"unauthorized"' || {
    echo "tenants-smoke: 401 envelope lacks code=unauthorized" >&2
    exit 1
}

# A wrong key gets the same 401 — the envelope must not leak whether the
# key exists.
curl -s -H 'Authorization: Bearer nope' "$BASE/v1/sessions" |
    grep -q '"code":"unauthorized"' || {
    echo "tenants-smoke: wrong key did not answer the unauthorized envelope" >&2
    exit 1
}

# alice creates her one allowed session; the response is stamped with her
# tenant.
RESP=$(curl -fsS -i -X POST "$BASE/v1/sessions" \
    -H 'Authorization: Bearer smoke-key-alice' \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":64,"dt":0.001}')
printf '%s\n' "$RESP" | grep -qi 'X-NBody-Tenant: alice' || {
    echo "tenants-smoke: create response lacks X-NBody-Tenant: alice" >&2
    exit 1
}

# Her second create trips the per-tenant session quota: 429, the quota
# envelope, and a Retry-After hint.
RESP=$(curl -s -i -X POST "$BASE/v1/sessions" \
    -H 'Authorization: Bearer smoke-key-alice' \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":64,"dt":0.001}')
printf '%s\n' "$RESP" | grep -q "429" || {
    echo "tenants-smoke: over-quota create did not answer 429" >&2
    printf '%s\n' "$RESP" >&2
    exit 1
}
printf '%s\n' "$RESP" | grep -q '"code":"quota_exceeded"' || {
    echo "tenants-smoke: over-quota envelope lacks code=quota_exceeded" >&2
    exit 1
}
printf '%s\n' "$RESP" | grep -qi 'Retry-After:' || {
    echo "tenants-smoke: over-quota 429 lacks Retry-After" >&2
    exit 1
}

# The quota is alice's alone: bob still creates.
curl -fsS -X POST "$BASE/v1/sessions" \
    -H 'Authorization: Bearer smoke-key-bob' \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":64,"dt":0.001}' >/dev/null || {
    echo "tenants-smoke: bob's create failed during alice's quota shed" >&2
    exit 1
}

# Scenario packs are listed and submittable by name: bob runs a small
# plummer-pack job to completion.
curl -fsS -H 'Authorization: Bearer smoke-key-bob' "$BASE/v1/scenarios" |
    grep -q '"name":"tsne-embedding"' || {
    echo "tenants-smoke: /v1/scenarios does not list tsne-embedding" >&2
    exit 1
}
ID=$(curl -fsS -X POST "$BASE/v1/jobs" \
    -H 'Authorization: Bearer smoke-key-bob' \
    -H 'Content-Type: application/json' \
    -d '{"scenario":{"name":"plummer","n":128,"seed":7},"steps":20}' |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "tenants-smoke: scenario job submit returned no id" >&2; exit 1; }

i=0
while :; do
    REC=$(curl -fsS -H 'Authorization: Bearer smoke-key-bob' "$BASE/v1/jobs/$ID")
    STATE=$(printf '%s\n' "$REC" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$STATE" = "succeeded" ] && break
    case "$STATE" in
    failed | cancelled)
        echo "tenants-smoke: scenario job $ID finished $STATE" >&2
        printf '%s\n' "$REC" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "tenants-smoke: scenario job $ID stuck in '$STATE'; log:" >&2
        tail -20 "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
printf '%s\n' "$REC" | grep -q '"tenant":"bob"' || {
    echo "tenants-smoke: job record lacks tenant attribution: $REC" >&2
    exit 1
}
printf '%s\n' "$REC" | grep -q '"scenario":"plummer"' || {
    echo "tenants-smoke: job record lacks the scenario echo: $REC" >&2
    exit 1
}

# The scrape carries the per-tenant series, populated by the traffic
# above; the scrape itself stays auth-exempt.
METRICS=$(curl -fsS "$BASE/metrics")
for series in \
    'nbody_tenant_requests_total{tenant="alice"}' \
    'nbody_tenant_requests_total{tenant="bob"}' \
    'nbody_tenant_sessions{tenant="alice"} 1' \
    'nbody_tenant_rejected_total{tenant="alice",kind="session"} 1' \
    'nbody_tenant_rejected_total{tenant="unknown",kind="auth"}' \
    'nbody_jobs_tenant_queued{tenant="bob"}'; do
    if ! printf '%s\n' "$METRICS" | grep -qF "$series"; then
        echo "tenants-smoke: /metrics missing series: $series" >&2
        printf '%s\n' "$METRICS" | grep -E 'nbody_(tenant|jobs_tenant)' >&2
        exit 1
    fi
done

echo "tenants-smoke: ok (auth boundary, session quota, scenario job, tenant metrics verified)"
