#!/usr/bin/env sh
# chaos_smoke.sh — end-to-end resilience smoke test.
#
# Boots two real nbody-serve replicas behind nbody-router, with shard a
# fronted by the nbody-chaos fault-injecting proxy, then scripts network
# faults through the /_chaos/ control API and asserts the resilience
# contract at the router's front door:
#
#   latency 5s     a request carrying a 300ms X-NBody-Deadline answers
#                  504 deadline_exceeded fast, and no work applies
#   error_rate 1   three straight 500s open shard a's circuit breaker:
#                  writes shed 503 shard_unavailable + Retry-After, the
#                  breaker is visible on /v1/shards and /metrics
#   (healed)       after one cooldown a trial request closes the breaker
#                  and a step applies exactly once — the shed write never
#                  landed
#   blackhole 1    GET /v1/sessions degrades to "incomplete": true with
#                  the skipped shard named, instead of hanging or failing
set -eu

PORT_A="${NBODY_SMOKE_PORT_A:-18086}"
PORT_B="${NBODY_SMOKE_PORT_B:-18087}"
PORT_C="${NBODY_SMOKE_PORT_C:-18088}"
PORT_R="${NBODY_SMOKE_PORT_R:-18089}"
BASE="http://127.0.0.1:$PORT_R"
CHAOS="http://127.0.0.1:$PORT_C"
WORK="$(mktemp -d)"

cleanup() {
    [ -n "${RTR_PID:-}" ] && kill "$RTR_PID" 2>/dev/null || true
    [ -n "${CHA_PID:-}" ] && kill "$CHA_PID" 2>/dev/null || true
    [ -n "${SRV_A_PID:-}" ] && kill "$SRV_A_PID" 2>/dev/null || true
    [ -n "${SRV_B_PID:-}" ] && kill "$SRV_B_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/nbody-serve" ./cmd/nbody-serve
go build -o "$WORK/nbody-router" ./cmd/nbody-router
go build -o "$WORK/nbody-chaos" ./cmd/nbody-chaos

"$WORK/nbody-serve" -addr "127.0.0.1:$PORT_A" -shard-id a -log-format=json \
    >"$WORK/a.log" 2>&1 &
SRV_A_PID=$!
"$WORK/nbody-serve" -addr "127.0.0.1:$PORT_B" -shard-id b -log-format=json \
    >"$WORK/b.log" 2>&1 &
SRV_B_PID=$!
"$WORK/nbody-chaos" -addr "127.0.0.1:$PORT_C" -target "http://127.0.0.1:$PORT_A" \
    >"$WORK/chaos.log" 2>&1 &
CHA_PID=$!

# -fail-after 1000 keeps the health prober from marking shard a down
# while faults run: the circuit breaker must be the mechanism under test.
"$WORK/nbody-router" -addr "127.0.0.1:$PORT_R" -log-format=json \
    -shard "a=$CHAOS" -shard "b=http://127.0.0.1:$PORT_B" \
    -probe-interval 250ms -fail-after 1000 \
    -proxy-timeout 2s -hedge-after 50ms \
    -breaker-failures 3 -breaker-cooldown 1s >"$WORK/router.log" 2>&1 &
RTR_PID=$!

wait_ready() {
    i=0
    until curl -fsS "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "chaos-smoke: $2 did not become ready; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_ready "http://127.0.0.1:$PORT_A" "shard a" "$WORK/a.log"
wait_ready "http://127.0.0.1:$PORT_B" "shard b" "$WORK/b.log"
wait_ready "$BASE" "router" "$WORK/router.log"

shard_of() {
    tr -d '\r' <"$1" | tr 'A-Z' 'a-z' | sed -n 's/^x-nbody-shard: //p' | head -1
}

# Place sessions through the router until one lands on (chaos-fronted)
# shard a — the victim the fault script acts on.
SID=""
i=0
while [ -z "$SID" ]; do
    i=$((i + 1))
    if [ "$i" -gt 40 ]; then
        echo "chaos-smoke: 40 placements never landed on shard a" >&2
        exit 1
    fi
    BODY=$(curl -fsS -D "$WORK/hdr" -X POST "$BASE/v1/sessions" \
        -H 'Content-Type: application/json' \
        -d '{"workload":"plummer","n":64,"dt":0.001}')
    if [ "$(shard_of "$WORK/hdr")" = "a" ]; then
        SID=$(printf '%s' "$BODY" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    fi
done
# And one session on shard b, so the degraded listing has survivors.
while :; do
    curl -fsS -D "$WORK/hdr" -X POST "$BASE/v1/sessions" \
        -H 'Content-Type: application/json' \
        -d '{"workload":"plummer","n":64,"dt":0.001}' >/dev/null
    [ "$(shard_of "$WORK/hdr")" = "b" ] && break
done

# ---- Fault 1: latency. The deadline must cut the request loose. -------
curl -fsS -X POST "$CHAOS/_chaos/set?latency=5s" >/dev/null
T0=$(date +%s)
STATUS=$(curl -s --max-time 4 -o "$WORK/body" -w '%{http_code}' \
    -H 'X-NBody-Deadline: 300ms' -X POST "$BASE/v1/sessions/$SID/step" \
    -H 'Content-Type: application/json' -d '{"steps":5}')
T1=$(date +%s)
[ "$STATUS" = "504" ] || {
    echo "chaos-smoke: step under 5s latency with a 300ms deadline: HTTP $STATUS, want 504" >&2
    cat "$WORK/body" >&2
    exit 1
}
grep -q '"deadline_exceeded"' "$WORK/body" || {
    echo "chaos-smoke: 504 body lacks deadline_exceeded: $(cat "$WORK/body")" >&2
    exit 1
}
[ $((T1 - T0)) -le 3 ] || {
    echo "chaos-smoke: deadline-bounded request took $((T1 - T0))s, want <= 3" >&2
    exit 1
}

# ---- Fault 2: errors. Three straight 500s open the breaker. -----------
curl -fsS -X POST "$CHAOS/_chaos/set?error_rate=1&error_code=500" >/dev/null
for i in 1 2 3; do
    STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/$SID")
    [ "$STATUS" = "500" ] || {
        echo "chaos-smoke: GET $i under error_rate=1: HTTP $STATUS, want the relayed 500" >&2
        exit 1
    }
done
curl -fsS "$BASE/v1/shards" | grep -q '"name":"a"[^}]*"breaker":"open"' || {
    echo "chaos-smoke: /v1/shards does not show shard a's breaker open" >&2
    curl -fsS "$BASE/v1/shards" >&2
    exit 1
}
STATUS=$(curl -s -D "$WORK/hdr" -o "$WORK/body" -w '%{http_code}' \
    -X POST "$BASE/v1/sessions/$SID/step" \
    -H 'Content-Type: application/json' -d '{"steps":5}')
[ "$STATUS" = "503" ] || {
    echo "chaos-smoke: write behind open breaker: HTTP $STATUS, want 503" >&2
    cat "$WORK/body" >&2
    exit 1
}
grep -q '"shard_unavailable"' "$WORK/body" || {
    echo "chaos-smoke: shed 503 lacks shard_unavailable: $(cat "$WORK/body")" >&2
    exit 1
}
tr -d '\r' <"$WORK/hdr" | grep -qi '^retry-after:' || {
    echo "chaos-smoke: shed 503 lacks Retry-After" >&2
    exit 1
}

# ---- Heal: one cooldown later, a trial request closes the circuit. ----
curl -fsS -X POST "$CHAOS/_chaos/off" >/dev/null
sleep 1.2
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/$SID")
[ "$STATUS" = "200" ] || {
    echo "chaos-smoke: trial request after heal + cooldown: HTTP $STATUS, want 200" >&2
    exit 1
}
curl -fsS "$BASE/v1/shards" | grep -q '"name":"a"[^}]*"breaker":"closed"' || {
    echo "chaos-smoke: breaker did not close after a successful trial" >&2
    curl -fsS "$BASE/v1/shards" >&2
    exit 1
}

# Exactly-once: the deadline-cut and breaker-shed steps never applied, so
# this first successful step brings the session to exactly 3 steps.
COMPLETED=$(curl -fsS -X POST "$BASE/v1/sessions/$SID/step" \
    -H 'Content-Type: application/json' -d '{"steps":3}' |
    sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
[ "$COMPLETED" = "3" ] || {
    echo "chaos-smoke: step after recovery completed '$COMPLETED', want 3" >&2
    exit 1
}
STEPS=$(curl -fsS "$BASE/v1/sessions/$SID" | sed -n 's/.*"steps":\([0-9]*\).*/\1/p')
[ "$STEPS" = "3" ] || {
    echo "chaos-smoke: session holds $STEPS total steps, want exactly 3 (a failed write applied)" >&2
    exit 1
}

# ---- Fault 3: partition. Listings degrade, never hang or 502. ---------
curl -fsS -X POST "$CHAOS/_chaos/set?blackhole_rate=1" >/dev/null
BODY=$(curl -fsS --max-time 5 -D "$WORK/hdr" "$BASE/v1/sessions")
printf '%s' "$BODY" | grep -q '"incomplete":true' || {
    echo "chaos-smoke: listing under partition not marked incomplete: $BODY" >&2
    exit 1
}
tr -d '\r' <"$WORK/hdr" | grep -qi '^x-nbody-skipped-shards: .*a' || {
    echo "chaos-smoke: degraded listing does not name skipped shard a" >&2
    exit 1
}
printf '%s' "$BODY" | grep -q '"id":"rs-' || {
    echo "chaos-smoke: degraded listing lost the surviving shard's sessions: $BODY" >&2
    exit 1
}
curl -fsS -X POST "$CHAOS/_chaos/off" >/dev/null

# ---- Resilience metrics exposed on the router. ------------------------
METRICS=$(curl -fsS "$BASE/metrics")
for pattern in \
    'nbody_router_breaker_opens_total{shard="a"} [1-9]' \
    'nbody_router_breaker_state{shard="a"} 0' \
    'nbody_router_deadline_expired_total [1-9]' \
    'nbody_router_hedged_reads_total'; do
    if ! printf '%s\n' "$METRICS" | grep -Eq "$pattern"; then
        echo "chaos-smoke: /metrics missing series matching: $pattern" >&2
        printf '%s\n' "$METRICS" | grep nbody_router | head -40 >&2
        exit 1
    fi
done

# The injector kept count of what it did: every scripted fault kind drew.
STATS=$(curl -fsS "$CHAOS/_chaos/stats")
for kind in latency error blackhole; do
    printf '%s' "$STATS" | grep -q "\"$kind\":[1-9]" || {
        echo "chaos-smoke: /_chaos/stats never counted a $kind fault: $STATS" >&2
        exit 1
    }
done

echo "chaos-smoke: ok (deadline cut at 300ms, breaker opened+recovered, exactly-once held, listing degraded cleanly)"
