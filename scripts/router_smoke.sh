#!/usr/bin/env sh
# router_smoke.sh — end-to-end sharding smoke test.
#
# Boots two real nbody-serve replicas and the nbody-router in front of
# them, places sessions through the router until both shards hold some,
# steps one, then pins shard a's single job worker with a long blocker
# job, places a router job on shard a, drains shard a and verifies the
# queued job is handed to shard b under the same ID and completes there.
# Finally asserts the router's /metrics exposes per-shard placement and
# handoff series and that the error envelope carries the stable codes.
set -eu

PORT_A="${NBODY_SMOKE_PORT_A:-18083}"
PORT_B="${NBODY_SMOKE_PORT_B:-18084}"
PORT_R="${NBODY_SMOKE_PORT_R:-18085}"
BASE="http://127.0.0.1:$PORT_R"
WORK="$(mktemp -d)"

cleanup() {
    [ -n "${RTR_PID:-}" ] && kill "$RTR_PID" 2>/dev/null || true
    [ -n "${SRV_A_PID:-}" ] && kill "$SRV_A_PID" 2>/dev/null || true
    [ -n "${SRV_B_PID:-}" ] && kill "$SRV_B_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/nbody-serve" ./cmd/nbody-serve
go build -o "$WORK/nbody-router" ./cmd/nbody-router

# Shard a gets a single job worker so one long blocker job pins its queue.
"$WORK/nbody-serve" -addr "127.0.0.1:$PORT_A" -shard-id a -log-format=json \
    -job-workers 1 >"$WORK/a.log" 2>&1 &
SRV_A_PID=$!
"$WORK/nbody-serve" -addr "127.0.0.1:$PORT_B" -shard-id b -log-format=json \
    -job-workers 2 >"$WORK/b.log" 2>&1 &
SRV_B_PID=$!

"$WORK/nbody-router" -addr "127.0.0.1:$PORT_R" -log-format=json \
    -shard "a=http://127.0.0.1:$PORT_A" -shard "b=http://127.0.0.1:$PORT_B" \
    -probe-interval 250ms >"$WORK/router.log" 2>&1 &
RTR_PID=$!

wait_ready() {
    i=0
    until curl -fsS "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "router-smoke: $2 did not become ready; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_ready "http://127.0.0.1:$PORT_A" "shard a" "$WORK/a.log"
wait_ready "http://127.0.0.1:$PORT_B" "shard b" "$WORK/b.log"
wait_ready "$BASE" "router" "$WORK/router.log"

# shard_of prints the shard header of the last curl -D dump.
shard_of() {
    tr -d '\r' <"$1" | tr 'A-Z' 'a-z' | sed -n 's/^x-nbody-shard: //p' | head -1
}

# Place sessions through the router until both shards hold at least one.
SEEN_A=0 SEEN_B=0 STEP_ID=""
i=0
while [ "$SEEN_A" -eq 0 ] || [ "$SEEN_B" -eq 0 ]; do
    i=$((i + 1))
    if [ "$i" -gt 40 ]; then
        echo "router-smoke: 40 placements did not land on both shards (a=$SEEN_A b=$SEEN_B)" >&2
        exit 1
    fi
    BODY=$(curl -fsS -D "$WORK/hdr" -X POST "$BASE/v1/sessions" \
        -H 'Content-Type: application/json' \
        -d '{"workload":"plummer","n":128,"dt":0.001}')
    SID=$(printf '%s' "$BODY" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    case "$SID" in rs-*) ;; *)
        echo "router-smoke: session id '$SID' is not router-minted" >&2
        exit 1
        ;;
    esac
    case "$(shard_of "$WORK/hdr")" in
    a) SEEN_A=1 ;;
    b) SEEN_B=1 ;;
    *)
        echo "router-smoke: placement response lacks a shard header" >&2
        exit 1
        ;;
    esac
    STEP_ID="$SID"
done

# A write proxies to the owning shard.
COMPLETED=$(curl -fsS -X POST "$BASE/v1/sessions/$STEP_ID/step" \
    -H 'Content-Type: application/json' -d '{"steps":3}' |
    sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
[ "$COMPLETED" = "3" ] || {
    echo "router-smoke: step via router completed '$COMPLETED' steps, want 3" >&2
    exit 1
}

# Pin shard a's single job worker with a long blocker, submitted directly.
curl -fsS -X POST "http://127.0.0.1:$PORT_A/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":256,"dt":0.001,"steps":500000}' >/dev/null

# Place jobs through the router until one lands on (pinned) shard a.
JOB_ID=""
i=0
while [ -z "$JOB_ID" ]; do
    i=$((i + 1))
    if [ "$i" -gt 40 ]; then
        echo "router-smoke: 40 job placements never landed on shard a" >&2
        exit 1
    fi
    BODY=$(curl -fsS -D "$WORK/hdr" -X POST "$BASE/v1/jobs" \
        -H 'Content-Type: application/json' \
        -d '{"workload":"plummer","n":64,"dt":0.001,"steps":20}')
    if [ "$(shard_of "$WORK/hdr")" = "a" ]; then
        JOB_ID=$(printf '%s' "$BODY" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    fi
done

# Drain shard a: the queued job must hand off, none may fail.
DRAIN=$(curl -fsS -X POST "$BASE/v1/shards/a/drain")
printf '%s' "$DRAIN" | grep -q '"draining":true' || {
    echo "router-smoke: drain response not draining: $DRAIN" >&2
    exit 1
}
HANDED=$(printf '%s' "$DRAIN" | sed -n 's/.*"handed_off":\([0-9]*\).*/\1/p')
FAILED=$(printf '%s' "$DRAIN" | sed -n 's/.*"failed":\([0-9]*\).*/\1/p')
[ "${HANDED:-0}" -ge 1 ] && [ "${FAILED:-1}" -eq 0 ] || {
    echo "router-smoke: drain handed_off=$HANDED failed=$FAILED, want >=1 and 0: $DRAIN" >&2
    exit 1
}

# The handed-off job keeps its ID, lands on shard b, and completes there.
i=0
while :; do
    BODY=$(curl -fsS -D "$WORK/hdr" "$BASE/v1/jobs/$JOB_ID")
    STATE=$(printf '%s' "$BODY" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    if [ "$STATE" = "succeeded" ]; then
        [ "$(shard_of "$WORK/hdr")" = "b" ] || {
            echo "router-smoke: handed-off job served by shard '$(shard_of "$WORK/hdr")', want b" >&2
            exit 1
        }
        break
    fi
    case "$STATE" in
    failed | cancelled)
        echo "router-smoke: handed-off job $JOB_ID finished $STATE" >&2
        printf '%s\n' "$BODY" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "router-smoke: handed-off job $JOB_ID stuck in '$STATE'" >&2
        tail -20 "$WORK/router.log" >&2
        exit 1
    fi
    sleep 0.1
done

# No job record was lost: the global listing holds the job exactly once.
COUNT=$(curl -fsS "$BASE/v1/jobs" | grep -o "\"id\":\"$JOB_ID\"" | wc -l)
[ "$COUNT" -eq 1 ] || {
    echo "router-smoke: job $JOB_ID appears $COUNT times in the merged listing, want 1" >&2
    exit 1
}

# New placements avoid the draining shard.
curl -fsS -D "$WORK/hdr" -X POST "$BASE/v1/sessions" \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":64,"dt":0.001}' >/dev/null
[ "$(shard_of "$WORK/hdr")" = "b" ] || {
    echo "router-smoke: placement during drain landed on '$(shard_of "$WORK/hdr")', want b" >&2
    exit 1
}

# Router metrics: per-shard placements on both shards, a successful
# handoff, and the draining gauge for shard a.
METRICS=$(curl -fsS "$BASE/metrics")
for pattern in \
    'nbody_router_placements_total{shard="a"} [1-9]' \
    'nbody_router_placements_total{shard="b"} [1-9]' \
    'nbody_router_handoffs_total{result="ok"} [1-9]' \
    'nbody_router_shard_draining{shard="a"} 1' \
    'nbody_router_shard_up{shard="b"} 1'; do
    if ! printf '%s\n' "$METRICS" | grep -Eq "$pattern"; then
        echo "router-smoke: /metrics missing series matching: $pattern" >&2
        printf '%s\n' "$METRICS" | grep nbody_router | head -40 >&2
        exit 1
    fi
done

# Error envelope sanity through the router: unknown IDs answer the stable
# codes after the discovery walk exhausts every shard.
CODE=$(curl -s "$BASE/v1/sessions/rs-nope" | sed -n 's/.*"code":"\([^"]*\)".*/\1/p')
[ "$CODE" = "session_not_found" ] || {
    echo "router-smoke: 404 envelope code '$CODE', want session_not_found" >&2
    exit 1
}

echo "router-smoke: ok (both shards placed, drain handed $HANDED job(s) to b, metrics verified)"
