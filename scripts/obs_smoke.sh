#!/usr/bin/env sh
# obs_smoke.sh — end-to-end observability smoke test.
#
# Boots nbody-serve on a scratch port, creates a session, steps it, then
# scrapes GET /metrics and requires the Prometheus exposition to carry the
# per-phase step-time histogram (nbody_step_phase_seconds) that the paper's
# Figure 8 breakdown maps onto. Exercises the real binary, the /v1 API and
# the metrics endpoint together — the parts a unit test stubs out.
set -eu

PORT="${NBODY_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/nbody-serve"
LOG="$(mktemp)"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$LOG"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/nbody-serve

"$BIN" -addr "127.0.0.1:$PORT" -log-format=json >"$LOG" 2>&1 &
SRV_PID=$!

# Wait for readiness.
i=0
until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "obs-smoke: server did not become ready; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# Create and step a session through the v1 API.
ID=$(curl -fsS -X POST "$BASE/v1/sessions" \
    -H 'Content-Type: application/json' \
    -d '{"workload":"plummer","n":256,"dt":0.001}' |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "obs-smoke: create returned no session id" >&2; exit 1; }
curl -fsS -X POST "$BASE/v1/sessions/$ID/step" \
    -H 'Content-Type: application/json' -d '{"steps":5}' >/dev/null

# The scrape must expose the populated phase histogram and core counters.
METRICS=$(curl -fsS "$BASE/metrics")
for series in \
    'nbody_step_phase_seconds_count{algorithm="octree",phase="force"} 5' \
    'nbody_step_phase_seconds_count{algorithm="octree",phase="build"} 5' \
    'nbody_steps_total 5' \
    'nbody_sessions_created_total 1'; do
    if ! printf '%s\n' "$METRICS" | grep -qF "$series"; then
        echo "obs-smoke: /metrics missing series: $series" >&2
        printf '%s\n' "$METRICS" | grep nbody_ | head -40 >&2
        exit 1
    fi
done

# Error envelope sanity: a missing session answers with the stable code.
CODE=$(curl -s "$BASE/v1/sessions/nope" | sed -n 's/.*"code":"\([^"]*\)".*/\1/p')
[ "$CODE" = "session_not_found" ] || {
    echo "obs-smoke: 404 envelope code '$CODE', want session_not_found" >&2
    exit 1
}

echo "obs-smoke: ok (session $ID, phase histograms populated)"
