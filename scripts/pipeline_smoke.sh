#!/usr/bin/env sh
# pipeline_smoke.sh — race-detector gate for pipelined stepping.
#
# Runs the phase-graph executor's own suite, the core-level
# pipelined-vs-synchronous bit-exactness matrix (every algorithm, both
# layouts, rebuild/cadence/refit paths, cancel-and-resume across paths),
# and the serve-level pipeline tests (multi-session overlap stress,
# admission, quarantine, HTTP end to end) — all under -race, so the
# phase tasks of concurrent sessions genuinely interleave on the shared
# executor while the detector watches.
#
# Usage: ./scripts/pipeline_smoke.sh  (or: make pipeline-smoke)
set -eu

cd "$(dirname "$0")/.."

echo "pipeline-smoke: executor suite (race)"
go test -race -count=1 ./internal/exec/

echo "pipeline-smoke: core equivalence + resume (race)"
go test -race -count=1 -run 'TestPipelined|TestCommitted' ./internal/core/

echo "pipeline-smoke: serve overlap + HTTP e2e (race)"
go test -race -count=1 -run 'TestPipelined' ./internal/serve/

echo "pipeline-smoke: OK"
