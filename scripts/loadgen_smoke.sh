#!/usr/bin/env sh
# loadgen_smoke.sh — end-to-end load-generator smoke test.
#
# Boots the real nbody-serve binary, drives ~5 seconds of mixed
# session-step / job-submit / watch traffic through cmd/nbody-loadgen (and
# therefore through the client SDK), and fails on any server 5xx. The JSON
# report with client-side p50/p95/p99 latency and shed rate per traffic
# class is printed and sanity-checked: the accounting identity
# sent >= ok + shed + failed must hold for the totals row.
set -eu

cd "$(dirname "$0")/.."

PORT="${NBODY_SMOKE_PORT:-18082}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SERVE="$WORK/nbody-serve"
LOADGEN="$WORK/nbody-loadgen"
LOG="$WORK/serve.log"
REPORT="$WORK/report.json"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$SERVE" ./cmd/nbody-serve
go build -o "$LOADGEN" ./cmd/nbody-loadgen

"$SERVE" -addr "127.0.0.1:$PORT" -log-format=json \
    -state-dir "$WORK/state" -job-workers 2 >"$LOG" 2>&1 &
SRV_PID=$!

# 5s of mixed traffic; -strict-5xx makes any server 5xx fail the script,
# -wait-ready covers the boot race.
"$LOADGEN" -addr "$BASE" -wait-ready 10s -strict-5xx \
    -rps 40 -duration 5s -workers 32 -sessions 6 \
    -mix 'step=8,job=1,watch=1' \
    -n 256 -step-batch 5 -watch-steps 10 -watch-every 5 \
    -job-steps 50 -job-class low -seed 1 \
    -out "$REPORT" || {
    echo "loadgen-smoke: load generator failed; server log:" >&2
    tail -20 "$LOG" >&2
    exit 1
}

# The report must carry the totals accounting identity and real latency
# quantiles for the step class.
for key in '"p50_ms"' '"p95_ms"' '"p99_ms"' '"shed_rate"' '"server_5xx"'; do
    grep -q "$key" "$REPORT" || {
        echo "loadgen-smoke: report lacks $key" >&2
        cat "$REPORT" >&2
        exit 1
    }
done

# sent >= ok + shed + failed over the totals row (awk pulls the totals
# object, the last occurrence of each counter in the document).
awk '
/"sent":/   { gsub(/[^0-9]/, "", $0); sent = $0 }
/"ok":/     { gsub(/[^0-9]/, "", $0); ok = $0 }
/"shed":/   { gsub(/[^0-9]/, "", $0); shed = $0 }
/"failed":/ { gsub(/[^0-9]/, "", $0); failed = $0 }
END {
    if (sent == "" || sent + 0 < ok + shed + failed) {
        printf "loadgen-smoke: accounting broken: sent=%s ok=%s shed=%s failed=%s\n", \
            sent, ok, shed, failed > "/dev/stderr"
        exit 1
    }
}' "$REPORT"

echo "loadgen-smoke: ok ($(grep -o '"sent"[^,]*' "$REPORT" | tail -1 | tr -dc 0-9) requests in totals, no 5xx)"
