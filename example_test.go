package nbody_test

import (
	"fmt"
	"log"
	"math"

	"nbody"
)

// The minimal simulation: the paper's galaxy-collision workload stepped
// with the Concurrent Octree.
func ExampleNewSimulation() {
	sys := nbody.NewGalaxyCollision(1_000, 42)
	sim, err := nbody.NewSimulation(nbody.Config{
		Algorithm: nbody.Octree,
		DT:        1e-5,
	}, sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(10); err != nil {
		log.Fatal(err)
	}
	fmt.Println("steps:", sim.StepCount())
	fmt.Println("bodies:", sim.System().N())
	// Output:
	// steps: 10
	// bodies: 1000
}

// Switching force solvers needs only a different Algorithm value; the two
// tree strategies and the exact baseline agree on conserved quantities.
func ExampleConfig_algorithms() {
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH, nbody.AllPairs} {
		sys := nbody.NewPlummer(300, 7)
		sim, err := nbody.NewSimulation(nbody.Config{
			Algorithm: alg,
			DT:        1e-3,
			Params:    nbody.Params{G: 1, Eps: 0.05, Theta: 0}, // θ=0 ⇒ exact trees
		}, sys)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(5); err != nil {
			log.Fatal(err)
		}
		d := sim.Diagnostics(true)
		fmt.Printf("%s: mass %.0f, energy bounded: %v\n", alg, d.Mass, d.TotalEnergy < 0)
	}
	// Output:
	// octree: mass 1, energy bounded: true
	// bvh: mass 1, energy bounded: true
	// all-pairs: mass 1, energy bounded: true
}

// Diagnostics expose the conservation laws a correct integration preserves.
func ExampleSim_diagnostics() {
	sys := nbody.NewPlummer(500, 3)
	sim, err := nbody.NewSimulation(nbody.Config{
		Algorithm: nbody.BVH,
		DT:        1e-3,
		Params:    nbody.Params{G: 1, Eps: 0.05, Theta: 0.4},
	}, sys)
	if err != nil {
		log.Fatal(err)
	}
	before := sim.Diagnostics(true)
	if err := sim.Run(50); err != nil {
		log.Fatal(err)
	}
	after := sim.Diagnostics(true)

	drift := math.Abs(after.TotalEnergy-before.TotalEnergy) / math.Abs(before.TotalEnergy)
	fmt.Println("mass conserved:", after.Mass == before.Mass)
	fmt.Println("energy drift below 1%:", drift < 0.01)
	// Output:
	// mass conserved: true
	// energy drift below 1%: true
}
