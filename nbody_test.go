package nbody_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"nbody"
)

// TestValidationCrossAlgorithm reproduces the paper's validation experiment
// (Section V-A) at reduced scale: simulate the solar-system small-body
// catalogue for one full day with a timestep of one hour using each
// implementation, and require the L2 error norm of the final body positions
// between any two implementations to be below 10⁻⁶ (the paper's criterion,
// in AU here). All-Pairs serves as the exact reference in place of the
// Thüring et al. SYCL solver. Run `nbody-bench validate -n 1039551` for the
// paper's full scale.
func TestValidationCrossAlgorithm(t *testing.T) {
	const n = 5_000
	const steps = 24
	const dt = 1.0 / 24 // one hour in days

	params := nbody.Params{G: nbody.GSolar, Eps: 0, Theta: 0.5}

	finalPos := func(alg nbody.Algorithm) [][3]float64 {
		sys := nbody.NewSolarSystemBelt(n, 2024)
		sim, err := nbody.NewSimulation(nbody.Config{Algorithm: alg, DT: dt, Params: params}, sys)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(steps); err != nil {
			t.Fatal(err)
		}
		// Re-index by body ID: the BVH permutes body order.
		out := make([][3]float64, n)
		for i := 0; i < n; i++ {
			out[sys.ID[i]] = [3]float64{sys.PosX[i], sys.PosY[i], sys.PosZ[i]}
		}
		return out
	}

	ref := finalPos(nbody.AllPairs)
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		got := finalPos(alg)
		var sum2 float64
		for i := range ref {
			dx := got[i][0] - ref[i][0]
			dy := got[i][1] - ref[i][1]
			dz := got[i][2] - ref[i][2]
			sum2 += dx*dx + dy*dy + dz*dz
		}
		l2 := math.Sqrt(sum2 / float64(n))
		t.Logf("%v vs all-pairs: RMS position error %.3g AU", alg, l2)
		if l2 > 1e-6 {
			t.Errorf("%v: L2 position error %g exceeds 1e-6 AU", alg, l2)
		}
	}
}

// TestFacadeQuickstart exercises the documented public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	sys := nbody.NewGalaxyCollision(1_000, 42)
	sim, err := nbody.NewSimulation(nbody.Config{
		Algorithm: nbody.Octree,
		DT:        1e-5,
		Runtime:   nbody.NewRuntime(0, nbody.Dynamic),
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	before := sim.Diagnostics(true)
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	after := sim.Diagnostics(true)
	if math.Abs(after.Mass-before.Mass) > 1e-9*before.Mass {
		t.Errorf("mass not conserved: %v -> %v", before.Mass, after.Mass)
	}
	if drift := math.Abs(after.TotalEnergy-before.TotalEnergy) / math.Abs(before.TotalEnergy); drift > 0.01 {
		t.Errorf("energy drift %v", drift)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, name := range []string{"galaxy", "galaxy-single", "plummer", "uniform", "solarsystem"} {
		sys, err := nbody.WorkloadByName(name, 100, 1)
		if err != nil || sys.N() != 100 {
			t.Errorf("%s: %v, n=%d", name, err, sys.N())
		}
	}
	if _, err := nbody.WorkloadByName("bogus", 10, 1); err == nil {
		t.Error("bogus workload accepted")
	}
	if nbody.NewGalaxy(10, 1).N() != 10 ||
		nbody.NewPlummer(10, 1).N() != 10 ||
		nbody.NewUniformCube(10, 1, 1).N() != 10 ||
		nbody.NewSolarSystemBelt(10, 1).N() != 10 ||
		nbody.NewSystem(10).N() != 10 {
		t.Error("constructor N mismatch")
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	if len(nbody.Algorithms()) != 4 {
		t.Errorf("Algorithms() = %v", nbody.Algorithms())
	}
	a, err := nbody.ParseAlgorithm("bvh")
	if err != nil || a != nbody.BVH {
		t.Errorf("ParseAlgorithm: %v %v", a, err)
	}
	if nbody.DefaultParams().Theta != 0.5 {
		t.Errorf("default theta: %v", nbody.DefaultParams().Theta)
	}
}

// TestFacadeRunContext checks the cancellable run API is reachable through
// the public facade (the serve layer and CLIs depend on it).
func TestFacadeRunContext(t *testing.T) {
	sys := nbody.NewPlummer(64, 3)
	sim, err := nbody.NewSimulation(nbody.Config{Algorithm: nbody.AllPairs, DT: 0.01}, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunContext(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.RunContext(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext = %v, want context.Canceled", err)
	}
	if got := sim.StepCount(); got != 2 {
		t.Fatalf("step count after cancel = %d, want 2", got)
	}
}
