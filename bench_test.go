// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V). Each BenchmarkFigN/BenchmarkTableN family measures exactly
// the quantity the corresponding paper artifact plots; the nbody-bench
// command prints the same data as formatted tables. See EXPERIMENTS.md for
// the paper-vs-measured comparison.
//
// Naming: sub-benchmarks encode the paper's independent variables, e.g.
// Fig5/octree/par is the parallel Concurrent Octree bar of Figure 5.
// Throughputs are reported as bodies·steps/s ("bodies/s"), the paper's
// metric.
package nbody_test

import (
	"fmt"
	"testing"

	"nbody"
	"nbody/internal/bvh"
	"nbody/internal/metrics"
	"nbody/internal/octree"
	"nbody/internal/par"
	"nbody/internal/stream"
)

// benchStep measures sim steps on a fresh galaxy-collision system of n
// bodies, reporting throughput in the paper's bodies·steps/s metric.
func benchStep(b *testing.B, cfg nbody.Config, n int) {
	b.Helper()
	sys := nbody.NewGalaxyCollision(n, 42)
	sim, err := nbody.NewSimulation(cfg, sys)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: first step computes initial forces and sizes pools.
	if err := sim.Step(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "bodies/s")
}

func galaxyDT(n int) float64 { return 1e-5 } // resolves the innermost disk orbits

// ---------------------------------------------------------------------------
// Table I — environment validation via BabelStream (Copy/Mul/Add/Triad/Dot).

func BenchmarkTable1Stream(b *testing.B) {
	for _, pol := range []par.Policy{par.Seq, par.ParUnseq} {
		b.Run(pol.String(), func(b *testing.B) {
			r := par.NewRuntime(0, par.Dynamic)
			var results []stream.Result
			for i := 0; i < b.N; i++ {
				results = stream.Benchmark(r, pol, stream.DefaultN/4, 5)
			}
			for _, res := range results {
				b.ReportMetric(res.GBps, res.Kernel+"_GB/s")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 5 — sequential vs parallel throughput, tiny galaxy (10⁴ bodies).

func BenchmarkFig5(b *testing.B) {
	const n = 10_000
	for _, alg := range nbody.Algorithms() {
		for _, seq := range []bool{true, false} {
			mode := "par"
			if seq {
				mode = "seq"
			}
			b.Run(fmt.Sprintf("%s/%s", alg, mode), func(b *testing.B) {
				benchStep(b, nbody.Config{Algorithm: alg, DT: galaxyDT(n), Sequential: seq}, n)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6 — algorithm throughput, small galaxy (10⁵ bodies).

func BenchmarkFig6(b *testing.B) {
	const n = 100_000
	for _, alg := range nbody.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			benchStep(b, nbody.Config{Algorithm: alg, DT: galaxyDT(n)}, n)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 7 — algorithm throughput, mid galaxy (10⁶ bodies). The O(N²)
// baselines need ~10¹² pair evaluations per step at this size — hours on a
// CPU — so, unlike the paper's GPU runs, they are exercised at 10⁶ only by
// `nbody-bench fig7 -allpairs`; the tree algorithms are benchmarked here.

func BenchmarkFig7(b *testing.B) {
	const n = 1_000_000
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		b.Run(alg.String(), func(b *testing.B) {
			benchStep(b, nbody.Config{Algorithm: alg, DT: galaxyDT(n)}, n)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 8 — relative per-phase time (excluding force), small galaxy, with
// the scheduler (static/dynamic/guided) standing in for the paper's
// toolchain axis. Custom metrics report each phase's fraction of the
// non-force time, the quantity Figure 8 plots.

func BenchmarkFig8(b *testing.B) {
	const n = 100_000
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		for _, sched := range []par.Scheduler{par.Dynamic, par.Static, par.Guided} {
			b.Run(fmt.Sprintf("%s/%s", alg, sched), func(b *testing.B) {
				sys := nbody.NewGalaxyCollision(n, 42)
				sim, err := nbody.NewSimulation(nbody.Config{
					Algorithm: alg,
					DT:        galaxyDT(n),
					Runtime:   par.NewRuntime(0, sched),
				}, sys)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
				sim.Breakdown().Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sim.Step(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				bd := sim.Breakdown()
				for _, p := range metrics.Phases() {
					if p == metrics.PhaseForce || bd.Elapsed(p) == 0 {
						continue
					}
					b.ReportMetric(bd.FractionExcludingForce(p), p.String()+"_frac")
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 9 — throughput vs problem size for two runtime implementations
// (dynamic vs static scheduling standing in for AdaptiveCpp vs NVC++).

func BenchmarkFig9(b *testing.B) {
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		for _, sched := range []par.Scheduler{par.Dynamic, par.Static} {
			for _, n := range []int{10_000, 100_000, 1_000_000} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", alg, sched, n), func(b *testing.B) {
					benchStep(b, nbody.Config{
						Algorithm: alg,
						DT:        galaxyDT(n),
						Runtime:   par.NewRuntime(0, sched),
					}, n)
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Validation workload (Section V-A) — throughput on the synthetic
// solar-system catalogue at a reduced size (the accuracy comparison itself
// is TestValidationCrossAlgorithm / `nbody-bench validate`).

func BenchmarkValidationSolarSystem(b *testing.B) {
	const n = 100_000
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		b.Run(alg.String(), func(b *testing.B) {
			sys := nbody.NewSolarSystemBelt(n, 42)
			sim, err := nbody.NewSimulation(nbody.Config{
				Algorithm: alg,
				DT:        1.0 / 24, // one hour in days
				Params:    nbody.Params{G: nbody.GSolar, Eps: 1e-8, Theta: 0.5},
			}, sys)
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.Step(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "bodies/s")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations of the design choices DESIGN.md calls out.

// Scatter (paper-faithful atomic adds) vs gather (last-thread sums) in the
// octree multipole reduction.
func BenchmarkAblationMoments(b *testing.B) {
	const n = 100_000
	for _, gather := range []bool{false, true} {
		name := "scatter"
		if gather {
			name = "gather"
		}
		b.Run(name, func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.Octree,
				DT:        galaxyDT(n),
				Octree:    octree.Config{GatherMoments: gather},
			}, n)
		})
	}
}

// Unsorted insertion (paper) vs Morton-presorted insertion for the octree
// build — locality/contention trade-off.
func BenchmarkAblationPresort(b *testing.B) {
	const n = 100_000
	for _, presort := range []bool{false, true} {
		name := "unsorted"
		if presort {
			name = "morton-presort"
		}
		b.Run(name, func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.Octree,
				DT:        galaxyDT(n),
				Octree:    octree.Config{PresortMorton: presort},
			}, n)
		})
	}
}

// Per-body traversal (paper) vs Hamada-style grouped traversal.
func BenchmarkAblationGroupTraversal(b *testing.B) {
	const n = 100_000
	for _, gs := range []int{0, 8, 32, 128} {
		name := "per-body"
		if gs > 0 {
			name = fmt.Sprintf("group=%d", gs)
		}
		b.Run(name, func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.Octree,
				DT:        galaxyDT(n),
				Octree:    octree.Config{PresortMorton: true, GroupSize: gs},
			}, n)
		})
	}
}

// BVH leaf granularity.
func BenchmarkAblationLeafSize(b *testing.B) {
	const n = 100_000
	for _, leaf := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("leaf=%d", leaf), func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.BVH,
				DT:        galaxyDT(n),
				BVH:       bvh.Config{LeafSize: leaf},
			}, n)
		})
	}
}

// Hilbert vs Morton body ordering for the BVH.
func BenchmarkAblationOrdering(b *testing.B) {
	const n = 100_000
	for _, ord := range []bvh.Ordering{bvh.Hilbert, bvh.Morton} {
		b.Run(ord.String(), func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.BVH,
				DT:        galaxyDT(n),
				BVH:       bvh.Config{Ordering: ord},
			}, n)
		})
	}
}

// Opening threshold θ: the accuracy/performance knob (and the crossover
// the paper discusses — θ means different things for octree vs BVH).
func BenchmarkAblationTheta(b *testing.B) {
	const n = 100_000
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		for _, theta := range []float64{0.3, 0.5, 0.8} {
			b.Run(fmt.Sprintf("%s/theta=%g", alg, theta), func(b *testing.B) {
				p := nbody.DefaultParams()
				p.Theta = theta
				benchStep(b, nbody.Config{Algorithm: alg, DT: galaxyDT(n), Params: p}, n)
			})
		}
	}
}

// Tree reuse across steps (Iwasawa-style amortization).
func BenchmarkAblationTreeReuse(b *testing.B) {
	const n = 100_000
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH} {
		for _, every := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/rebuild=%d", alg, every), func(b *testing.B) {
				benchStep(b, nbody.Config{Algorithm: alg, DT: galaxyDT(n), RebuildEvery: every}, n)
			})
		}
	}
}

// Spatial-structure extension: octree and BVH (paper) vs the kd-tree, plus
// the BVH opening-criterion variant (center-distance vs box-distance).
func BenchmarkAblationStructure(b *testing.B) {
	const n = 100_000
	for _, alg := range []nbody.Algorithm{nbody.Octree, nbody.BVH, nbody.KDTree} {
		b.Run(alg.String(), func(b *testing.B) {
			benchStep(b, nbody.Config{Algorithm: alg, DT: galaxyDT(n)}, n)
		})
	}
	for _, crit := range []bvh.Criterion{bvh.CenterDistance, bvh.BoxDistance} {
		b.Run("bvh-"+crit.String(), func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.BVH,
				DT:        galaxyDT(n),
				BVH:       bvh.Config{Criterion: crit},
			}, n)
		})
	}
	b.Run("kdtree-dual", func(b *testing.B) {
		benchStep(b, nbody.Config{
			Algorithm: nbody.KDTree,
			DT:        galaxyDT(n),
			KD:        nbody.KDConfig{Dual: true},
		}, n)
	})
}

// Monopole vs quadrupole moments (the paper's "extends to multipoles").
func BenchmarkAblationQuadrupole(b *testing.B) {
	const n = 100_000
	for _, quad := range []bool{false, true} {
		name := "monopole"
		if quad {
			name = "quadrupole"
		}
		b.Run(name, func(b *testing.B) {
			benchStep(b, nbody.Config{
				Algorithm: nbody.Octree,
				DT:        galaxyDT(n),
				Octree:    octree.Config{Quadrupole: quad},
			}, n)
		})
	}
}
