// Package nbody is a pure-Go reproduction of "Efficient Tree-based Parallel
// Algorithms for N-Body Simulations Using C++ Standard Parallelism"
// (Cassell, Deakin, Alpay, Heuveline, Brito Gadeschi — SC 2024).
//
// It provides two fully-parallel Barnes-Hut force solvers — the paper's
// Concurrent Octree (parallel insertion with fine-grained CAS locking, a
// wait-free multipole tree reduction, and a stackless depth-first
// traversal) and its Hilbert-sorted balanced BVH (bodies sorted along a
// Hilbert space-filling curve, tree and moments built level-by-level) —
// plus the two O(N²) all-pairs baselines the paper evaluates against,
// Störmer-Verlet time integration, deterministic workload generators, and
// a benchmark harness regenerating every figure and table of the paper's
// evaluation on the host machine.
//
// This package is a thin facade over the implementation packages in
// internal/; see DESIGN.md for the system inventory. Quick start:
//
//	sys := nbody.NewGalaxyCollision(100_000, 42)
//	sim, err := nbody.NewSimulation(nbody.Config{
//		Algorithm: nbody.Octree,
//		DT:        1e-3,
//	}, sys)
//	if err != nil { ... }
//	err = sim.Run(100)
//
// Long runs are cancellable: sim.RunContext(ctx, n) stops at the next step
// boundary once ctx is done, which is what the nbody CLI uses for clean
// Ctrl-C handling and the nbody-serve service uses for request timeouts and
// graceful shutdown.
//
// The parallel substrate (execution policies, schedulers, parallel
// algorithms) lives in internal/par and is configured through
// Config.Runtime; see NewRuntime.
package nbody

import (
	"nbody/internal/body"
	"nbody/internal/bvh"
	"nbody/internal/core"
	"nbody/internal/grav"
	"nbody/internal/kdtree"
	"nbody/internal/octree"
	"nbody/internal/par"
	"nbody/internal/workload"
)

// Algorithm selects the force solver. See the constants below.
type Algorithm = core.Algorithm

// Force-solver algorithms, in the order the paper's figures plot them.
const (
	// Octree is the Concurrent Octree strategy (paper Section IV-A).
	Octree = core.Octree
	// BVH is the Hilbert-sorted BVH strategy (paper Section IV-B).
	BVH = core.BVH
	// AllPairs is the classical O(N²) baseline.
	AllPairs = core.AllPairs
	// AllPairsCol is the pair-parallel O(N²/2) baseline with atomic
	// accumulation.
	AllPairsCol = core.AllPairsCol
	// KDTree is an extension beyond the paper: a median-split kd-tree
	// solver (the third decomposition Section IV lists).
	KDTree = core.KDTree
)

// Config parameterizes a simulation; see core.Config for field docs.
type Config = core.Config

// OctreeConfig selects Concurrent Octree variants (depth cap, gather-
// variant multipole reduction, quadrupole moments).
type OctreeConfig = octree.Config

// BVHConfig selects Hilbert-BVH variants (leaf size, curve ordering, grid
// order, opening criterion).
type BVHConfig = bvh.Config

// KDConfig selects kd-tree variants (leaf size, build grain, dual-tree
// traversal).
type KDConfig = kdtree.Config

// Params are the physical and accuracy parameters (G, softening ε, θ).
type Params = grav.Params

// Sim is a running simulation created by NewSimulation.
type Sim = core.Sim

// System is the SoA particle state shared with a simulation.
type System = body.System

// Diagnostics are the conservation quantities reported by Sim.Diagnostics.
type Diagnostics = core.Diagnostics

// Runtime is a parallel execution environment (worker count + scheduler).
type Runtime = par.Runtime

// Scheduler selects how parallel loops divide work; see the constants.
type Scheduler = par.Scheduler

// Schedulers for NewRuntime.
const (
	// Dynamic self-schedules fixed-size chunks (best for irregular work).
	Dynamic = par.Dynamic
	// Static pre-assigns one contiguous block per worker.
	Static = par.Static
	// Guided self-schedules chunks that shrink with remaining work.
	Guided = par.Guided
)

// NewSimulation validates cfg and sys and returns a ready simulation.
func NewSimulation(cfg Config, sys *System) (*Sim, error) { return core.New(cfg, sys) }

// NewSystem returns a zeroed system of n bodies.
func NewSystem(n int) *System { return body.NewSystem(n) }

// NewRuntime returns a parallel runtime with the given worker count
// (<= 0 selects GOMAXPROCS) and scheduler.
func NewRuntime(workers int, sched Scheduler) *Runtime { return par.NewRuntime(workers, sched) }

// DefaultParams returns the paper's evaluation parameters (θ = 0.5, G = 1,
// small Plummer softening).
func DefaultParams() Params { return grav.DefaultParams() }

// ParseAlgorithm converts a CLI name ("octree", "bvh", "all-pairs",
// "all-pairs-col") into an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) { return core.ParseAlgorithm(name) }

// Algorithms lists the solvers the paper evaluates.
func Algorithms() []Algorithm { return core.Algorithms() }

// AllAlgorithms additionally includes the extensions beyond the paper
// (currently KDTree).
func AllAlgorithms() []Algorithm { return core.AllAlgorithms() }

// NewGalaxyCollision generates the paper's evaluation workload: a
// deterministic collision between two disk galaxies totalling n bodies.
func NewGalaxyCollision(n int, seed uint64) *System { return workload.GalaxyCollision(n, seed) }

// NewGalaxy generates a single rotating disk galaxy of n bodies.
func NewGalaxy(n int, seed uint64) *System { return workload.Galaxy(n, seed) }

// NewPlummer generates an n-body Plummer sphere in standard N-body units.
func NewPlummer(n int, seed uint64) *System { return workload.Plummer(n, seed) }

// NewUniformCube generates n unit-mass bodies uniform in a cube.
func NewUniformCube(n int, side float64, seed uint64) *System {
	return workload.UniformCube(n, side, seed)
}

// NewSolarSystemBelt generates the synthetic small-body catalogue used by
// the validation experiment (a stand-in for NASA JPL's Small-Body
// Database): a solar-mass central body plus n-1 asteroids on realistic
// heliocentric orbits. Units: AU, days, solar masses; use GSolar for G.
func NewSolarSystemBelt(n int, seed uint64) *System { return workload.SolarSystemBelt(n, seed) }

// GSolar is the gravitational constant in the solar-system workload's units
// (AU³ per solar mass per day²).
const GSolar = workload.GSolar

// WorkloadByName dispatches a workload generator by CLI name: "galaxy",
// "galaxy-single", "plummer", "uniform", "clusters", "solarsystem".
func WorkloadByName(name string, n int, seed uint64) (*System, error) {
	return workload.ByName(name, n, seed)
}
