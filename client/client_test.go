package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClient builds a Client against srv with deterministic rand and a
// recording sleep seam.
func newTestClient(t *testing.T, srv *httptest.Server, opts ...Option) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var sleeps []time.Duration
	c.rand = func() float64 { return 0.5 }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil
	}
	return c, &sleeps
}

func writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, code, msg)
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After must be retried after
// exactly the advertised wait, not the client's own backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			writeEnvelope(w, http.StatusTooManyRequests, CodeOverloaded, "shed")
			return
		}
		json.NewEncoder(w).Encode(Session{ID: "s-1", Steps: 3})
	}))
	defer srv.Close()

	c, sleeps := newTestClient(t, srv)
	s, err := c.Session(context.Background(), "s-1")
	if err != nil {
		t.Fatalf("Session after retries: %v", err)
	}
	if s.ID != "s-1" || s.Steps != 3 {
		t.Errorf("decoded session = %+v", s)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	want := []time.Duration{7 * time.Second, 7 * time.Second}
	if len(*sleeps) != len(want) || (*sleeps)[0] != want[0] || (*sleeps)[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", *sleeps, want)
	}
}

// TestRetryAfterCapped: a hostile Retry-After cannot park the client
// beyond the cap.
func TestRetryAfterCapped(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "9999")
			writeEnvelope(w, http.StatusTooManyRequests, CodeOverloaded, "shed")
			return
		}
		json.NewEncoder(w).Encode(Session{ID: "s-1"})
	}))
	defer srv.Close()

	c, sleeps := newTestClient(t, srv)
	if _, err := c.Session(context.Background(), "s-1"); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != maxHonoredRetryAfter {
		t.Errorf("sleeps = %v, want [%v]", *sleeps, maxHonoredRetryAfter)
	}
}

// TestRetryWithoutRetryAfterUsesJitteredBackoff: no header → exponential
// backoff with full jitter (rand seam pinned at 0.5).
func TestRetryWithoutRetryAfterUsesJitteredBackoff(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeEnvelope(w, http.StatusServiceUnavailable, CodeShuttingDown, "draining")
			return
		}
		json.NewEncoder(w).Encode(Session{ID: "s-1"})
	}))
	defer srv.Close()

	c, sleeps := newTestClient(t, srv, WithRetries(3, 100*time.Millisecond, 5*time.Second))
	if _, err := c.Session(context.Background(), "s-1"); err != nil {
		t.Fatal(err)
	}
	// 0.5 × 100ms, then 0.5 × 200ms.
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(*sleeps) != 2 || (*sleeps)[0] != want[0] || (*sleeps)[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", *sleeps, want)
	}
}

// TestRetriesDisabledSurfacesShed: WithRetries(0,...) must deliver the
// 429 to the caller immediately, with the parsed Retry-After attached.
func TestRetriesDisabledSurfacesShed(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "12")
		writeEnvelope(w, http.StatusTooManyRequests, CodeOverloaded, "shed")
	}))
	defer srv.Close()

	c, sleeps := newTestClient(t, srv, WithRetries(0, 0, 0))
	_, err := c.Session(context.Background(), "s-1")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if !ae.Overloaded() || !IsOverloaded(err) {
		t.Errorf("Overloaded() false for %+v", ae)
	}
	if ae.RetryAfter != 12*time.Second {
		t.Errorf("RetryAfter = %v, want 12s", ae.RetryAfter)
	}
	if calls.Load() != 1 || len(*sleeps) != 0 {
		t.Errorf("calls = %d sleeps = %v, want exactly one call and no sleeps", calls.Load(), *sleeps)
	}
}

// TestRetryBudgetExhausted: a server that sheds forever yields the last
// APIError after maxRetries+1 attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeEnvelope(w, http.StatusTooManyRequests, CodeOverloaded, "shed")
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, WithRetries(2, time.Millisecond, time.Millisecond))
	_, err := c.Session(context.Background(), "s-1")
	if !IsOverloaded(err) {
		t.Fatalf("err = %v, want overloaded", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestEnvelopeDecoding decodes every documented envelope code into the
// matching APIError fields.
func TestEnvelopeDecoding(t *testing.T) {
	cases := []struct {
		code   string
		status int
	}{
		{CodeSessionNotFound, http.StatusNotFound},
		{CodeSessionFailed, http.StatusUnprocessableEntity},
		{CodeSessionBusy, http.StatusConflict},
		{CodeOverloaded, http.StatusTooManyRequests},
		{CodeShuttingDown, http.StatusServiceUnavailable},
		{CodeInvalidRequest, http.StatusBadRequest},
		{CodeInvalidSnapshot, http.StatusUnprocessableEntity},
		{CodeClientClosed, 499},
		{CodeInternal, http.StatusInternalServerError},
		{CodeJobNotFound, http.StatusNotFound},
		{CodeJobNotReady, http.StatusConflict},
	}
	var status atomic.Int32
	var code atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", "req-42")
		writeEnvelope(w, int(status.Load()), code.Load().(string), "boom")
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			status.Store(int32(tc.status))
			code.Store(tc.code)
			_, err := c.Session(context.Background(), "x")
			var ae *APIError
			if !errors.As(err, &ae) {
				t.Fatalf("err = %v, want *APIError", err)
			}
			if ae.Code != tc.code || ae.Status != tc.status {
				t.Errorf("decoded (%q, %d), want (%q, %d)", ae.Code, ae.Status, tc.code, tc.status)
			}
			if ae.Message != "boom" || ae.RequestID != "req-42" {
				t.Errorf("message/request-id = %q/%q", ae.Message, ae.RequestID)
			}
			if ErrorCode(err) != tc.code {
				t.Errorf("ErrorCode = %q", ErrorCode(err))
			}
		})
	}
}

// TestNonEnvelopeErrorFallsBack: a plain-text error body still yields a
// useful APIError.
func TestNonEnvelopeErrorFallsBack(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))
	_, err := c.Session(context.Background(), "x")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusBadGateway || ae.Code != "" || ae.Message != "gateway exploded" {
		t.Errorf("APIError = %+v", ae)
	}
}

// TestStepPartialResult: an interrupted step's envelope carries the
// partial progress; Step must surface it in the returned result.
func TestStepPartialResult(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":{"code":"shutting_down","message":"draining"},`+
			`"result":{"id":"s-1","requested":100,"completed":42,"steps":42,"interrupted":true}}`)
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))
	res, err := c.Step(context.Background(), "s-1", 100)
	if err == nil {
		t.Fatal("Step = nil error, want shutting_down")
	}
	if ErrorCode(err) != CodeShuttingDown {
		t.Errorf("code = %q, want shutting_down", ErrorCode(err))
	}
	if res.Completed != 42 || !res.Interrupted {
		t.Errorf("partial result = %+v, want completed 42 interrupted", res)
	}
}

// TestSessionsIteratorFollowsCursor: the range iterator walks every page.
func TestSessionsIteratorFollowsCursor(t *testing.T) {
	pages := map[string]string{
		"":    `{"sessions":[{"id":"s-1"},{"id":"s-2"}],"next_cursor":"s-2"}`,
		"s-2": `{"sessions":[{"id":"s-3"}],"next_cursor":""}`,
	}
	var cursors []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := r.URL.Query().Get("cursor")
		cursors = append(cursors, cur)
		io.WriteString(w, pages[cur])
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	var ids []string
	for s, err := range c.Sessions(context.Background(), 2) {
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	if len(ids) != 3 || ids[0] != "s-1" || ids[2] != "s-3" {
		t.Errorf("ids = %v, want [s-1 s-2 s-3]", ids)
	}
	if len(cursors) != 2 || cursors[1] != "s-2" {
		t.Errorf("cursors = %v, want [\"\" s-2]", cursors)
	}
}

// watchFake serves the session-info endpoint plus scripted watch
// responses, recording each watch request's steps parameter.
type watchFake struct {
	sessionSteps int
	scripts      []func(w http.ResponseWriter, r *http.Request)
	watchCalls   atomic.Int32
	mu           sync.Mutex
	stepsSeen    []string
}

func (f *watchFake) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Session{ID: r.PathValue("id"), Steps: f.sessionSteps})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/watch", func(w http.ResponseWriter, r *http.Request) {
		n := int(f.watchCalls.Add(1)) - 1
		f.mu.Lock()
		f.stepsSeen = append(f.stepsSeen, r.URL.Query().Get("steps"))
		f.mu.Unlock()
		if n < len(f.scripts) {
			f.scripts[n](w, r)
			return
		}
		http.Error(w, "unexpected watch call", http.StatusInternalServerError)
	})
	return mux
}

func ndjson(w http.ResponseWriter, lines ...string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl := w.(http.Flusher)
	for _, ln := range lines {
		io.WriteString(w, ln+"\n")
		fl.Flush()
	}
}

// TestWatchReconnectMidStream: a stream that dies after 3 of 6 events must
// be re-established asking for exactly the remaining 3 steps, and the
// caller sees all 6 events exactly once.
func TestWatchReconnectMidStream(t *testing.T) {
	f := &watchFake{}
	f.scripts = []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			ndjson(w,
				`{"step":1}`,
				`{"step":2}`,
				`{"step":3}`,
			) // connection ends early: 3 of 6 steps delivered
		},
		func(w http.ResponseWriter, r *http.Request) {
			ndjson(w,
				`{"step":4}`,
				`{"step":5}`,
				`{"step":6}`,
			)
		},
	}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	var steps []int
	for ev, err := range c.WatchEvents(context.Background(), "s-1", WatchOptions{Steps: 6}) {
		if err != nil {
			t.Fatalf("after %v: %v", steps, err)
		}
		steps = append(steps, ev.Step)
	}
	if len(steps) != 6 || steps[0] != 1 || steps[5] != 6 {
		t.Fatalf("steps = %v, want 1..6", steps)
	}
	if f.watchCalls.Load() != 2 {
		t.Fatalf("watch calls = %d, want 2", f.watchCalls.Load())
	}
	if f.stepsSeen[0] != "6" || f.stepsSeen[1] != "3" {
		t.Errorf("watch steps params = %v, want [6 3] (reconnect must ask only for the remainder)", f.stepsSeen)
	}
}

// TestWatchSkipsHeartbeats: comment and blank lines are transparent to
// the event stream.
func TestWatchSkipsHeartbeats(t *testing.T) {
	f := &watchFake{}
	f.scripts = []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			ndjson(w,
				`: heartbeat`,
				`{"step":1}`,
				``,
				`: heartbeat`,
				`{"step":2}`,
			)
		},
	}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	var steps []int
	for ev, err := range c.WatchEvents(context.Background(), "s-1", WatchOptions{Steps: 2}) {
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, ev.Step)
	}
	if len(steps) != 2 || steps[0] != 1 || steps[1] != 2 {
		t.Errorf("steps = %v, want [1 2]", steps)
	}
}

// TestWatchMidStreamEnvelopeIsTerminal: an error record inside the stream
// ends the watch with the decoded APIError — no reconnect.
func TestWatchMidStreamEnvelopeIsTerminal(t *testing.T) {
	f := &watchFake{}
	f.scripts = []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			ndjson(w,
				`{"step":1}`,
				`{"error":{"code":"session_failed","message":"non-finite state","session_state":"failed"}}`,
			)
		},
	}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	var steps []int
	var lastErr error
	for ev, err := range c.WatchEvents(context.Background(), "s-1", WatchOptions{Steps: 5}) {
		if err != nil {
			lastErr = err
			break
		}
		steps = append(steps, ev.Step)
	}
	if len(steps) != 1 {
		t.Fatalf("steps = %v, want [1]", steps)
	}
	var ae *APIError
	if !errors.As(lastErr, &ae) || ae.Code != CodeSessionFailed || ae.SessionState != "failed" {
		t.Fatalf("terminal err = %v, want session_failed envelope", lastErr)
	}
	if f.watchCalls.Load() != 1 {
		t.Errorf("watch calls = %d, want 1 (mid-stream envelope must not trigger reconnect)", f.watchCalls.Load())
	}
}

// TestWatchReconnectBudget: a server that always truncates eventually
// exhausts the reconnect budget and fails.
func TestWatchReconnectBudget(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Session{ID: "s-1", Steps: 0})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/watch", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		ndjson(w, `{"step":1}`) // always truncates after step 1
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	var lastErr error
	for _, err := range c.WatchEvents(context.Background(), "s-1", WatchOptions{Steps: 5, MaxReconnects: 2}) {
		if err != nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("watch of an always-truncating server succeeded")
	}
	if calls.Load() != 3 {
		t.Errorf("watch calls = %d, want 3 (initial + 2 reconnects)", calls.Load())
	}
}

// TestCancelJobForms covers both DELETE /v1/jobs/{id} outcomes.
func TestCancelJobForms(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete {
			t.Errorf("method = %s", r.Method)
		}
		switch r.URL.Path {
		case "/v1/jobs/j-1":
			json.NewEncoder(w).Encode(Job{ID: "j-1", State: JobCancelled})
		case "/v1/jobs/j-2":
			w.WriteHeader(http.StatusNoContent)
		default:
			writeEnvelope(w, http.StatusNotFound, CodeJobNotFound, "no such job")
		}
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	j, deleted, err := c.CancelJob(context.Background(), "j-1")
	if err != nil || deleted || j.State != JobCancelled {
		t.Errorf("cancel running: job %+v deleted %v err %v", j, deleted, err)
	}
	_, deleted, err = c.CancelJob(context.Background(), "j-2")
	if err != nil || !deleted {
		t.Errorf("cancel terminal: deleted %v err %v", deleted, err)
	}
	_, _, err = c.CancelJob(context.Background(), "j-3")
	if !IsNotFound(err) {
		t.Errorf("cancel missing: err %v, want job_not_found", err)
	}
}

// TestWaitJobPollsToTerminal drives WaitJob across queued → running →
// succeeded.
func TestWaitJobPollsToTerminal(t *testing.T) {
	states := []string{JobQueued, JobRunning, JobSucceeded}
	var call atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := min(int(call.Add(1))-1, len(states)-1)
		json.NewEncoder(w).Encode(Job{ID: "j-1", State: states[i]})
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	j, err := c.WaitJob(context.Background(), "j-1", time.Millisecond)
	if err != nil || j.State != JobSucceeded {
		t.Fatalf("WaitJob = %+v, %v", j, err)
	}
	if call.Load() != 3 {
		t.Errorf("polled %d times, want 3", call.Load())
	}
}

// TestBaseURLValidation rejects unusable base URLs and trims slashes.
func TestBaseURLValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("New(\"\") succeeded")
	}
	c, err := New("http://example.test/")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://example.test" {
		t.Errorf("BaseURL = %q", c.BaseURL())
	}
}

// TestRetryGatewayErrors: 502 and 504 — what a sharded deployment's
// router emits when a hop to a shard breaks — are transient and must be
// retried like 503 on idempotent GETs, honoring Retry-After when
// present.
func TestRetryGatewayErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			writeEnvelope(w, http.StatusBadGateway, CodeBadGateway, "shard hop broke")
		case 2:
			writeEnvelope(w, http.StatusGatewayTimeout, "gateway_timeout", "shard slow")
		default:
			json.NewEncoder(w).Encode(Session{ID: "s-1", Steps: 3})
		}
	}))
	defer srv.Close()

	c, sleeps := newTestClient(t, srv)
	s, err := c.Session(context.Background(), "s-1")
	if err != nil {
		t.Fatalf("Session after gateway-error retries: %v", err)
	}
	if s.ID != "s-1" {
		t.Errorf("decoded session = %+v", s)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	if len(*sleeps) != 2 || (*sleeps)[0] != 2*time.Second {
		t.Errorf("sleeps = %v, want [2s, <backoff>]", *sleeps)
	}
}

// TestGatewayErrorsNotRetriedOnWrite: a 502 on a non-idempotent request
// surfaces immediately — the router emits 502 exactly when a write may
// have reached the shard, so re-sending could double-apply it (step the
// simulation twice, duplicate a job submit). 503 stays retryable for
// writes: the router sheds those before forwarding anything.
func TestGatewayErrorsNotRetriedOnWrite(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeEnvelope(w, http.StatusBadGateway, CodeBadGateway, "shard hop broke")
	}))
	defer srv.Close()

	c, sleeps := newTestClient(t, srv)
	_, err := c.Step(context.Background(), "s-1", 1)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway || ae.Code != CodeBadGateway {
		t.Fatalf("step through broken gateway: %v, want 502 bad_gateway APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (a write must not be re-sent on 502)", calls.Load())
	}
	if len(*sleeps) != 0 {
		t.Errorf("client slept %v before surfacing a non-retryable 502", *sleeps)
	}
}

// TestAPIErrorShard: the shard that produced an error is decoded from the
// envelope, falling back to the X-NBody-Shard header when the envelope
// omits it.
func TestAPIErrorShard(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-NBody-Shard", "b")
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/sessions/envelope":
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"shard_unavailable","message":"down","shard":"a"}}`)
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"session_not_found","message":"nope"}}`)
		}
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))
	_, err := c.Session(context.Background(), "envelope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Shard != "a" {
		t.Fatalf("envelope shard: err %v, want APIError with Shard a", err)
	}
	_, err = c.Session(context.Background(), "header-only")
	if !errors.As(err, &apiErr) || apiErr.Shard != "b" {
		t.Fatalf("header-fallback shard: err %v, want APIError with Shard b", err)
	}
}

// TestReprioritizeJob: the SDK PATCHes the job with the new class and
// decodes the updated record.
func TestReprioritizeJob(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPatch || r.URL.Path != "/v1/jobs/j-1" {
			t.Errorf("server saw %s %s, want PATCH /v1/jobs/j-1", r.Method, r.URL.Path)
		}
		var req struct {
			Class string `json:"class"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Class != "high" {
			t.Errorf("reprioritize body class %q (err %v), want high", req.Class, err)
		}
		json.NewEncoder(w).Encode(Job{ID: "j-1", State: JobQueued, Class: "high"})
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))
	j, err := c.ReprioritizeJob(context.Background(), "j-1", "high")
	if err != nil {
		t.Fatal(err)
	}
	if j.Class != "high" || j.State != JobQueued {
		t.Fatalf("reprioritized job = %+v", j)
	}
}

// TestRetrySleepAbortsOnCancel pins the resilience contract of the real
// sleepContext seam: a shed response advertising a long Retry-After must
// not park a cancelled caller — the backoff aborts as soon as the
// context dies, and no further attempt is sent.
func TestRetrySleepAbortsOnCancel(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		writeEnvelope(w, http.StatusServiceUnavailable, CodeShuttingDown, "draining")
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithRetries(5, time.Millisecond, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, gerr := c.Session(ctx, "s-1")
	if gerr == nil || !errors.Is(gerr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", gerr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled retry slept %v — backoff ignored the context", elapsed)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls after cancel, want 1", calls.Load())
	}
}

// TestWaitJobAbortsOnCancel: the poll sleep between job fetches must
// abort promptly when the context dies, even with a long poll interval.
func TestWaitJobAbortsOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Job{ID: "j-1", State: "running"})
	}))
	defer srv.Close()

	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, werr := c.WaitJob(ctx, "j-1", time.Hour); !errors.Is(werr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", werr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled WaitJob blocked %v", elapsed)
	}
}

// TestDeadlineHeaderStamped: a context deadline travels upstream as the
// X-NBody-Deadline remaining-budget header on both the buffered and the
// streaming request paths; without a deadline the header is absent.
func TestDeadlineHeaderStamped(t *testing.T) {
	var mu sync.Mutex
	headers := map[string]string{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers[r.URL.Path] = r.Header.Get("X-NBody-Deadline")
		mu.Unlock()
		if r.URL.Path == "/v1/sessions/s-1/trace" {
			io.WriteString(w, "step,energy\n")
			return
		}
		json.NewEncoder(w).Encode(Session{ID: "s-1"})
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Session(ctx, "s-1"); err != nil {
		t.Fatal(err)
	}
	rc, err := c.SessionTrace(ctx, "s-1")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if _, err := c.Session(context.Background(), "s-1"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	d, perr := time.ParseDuration(headers["/v1/sessions/s-1/trace"])
	if perr != nil || d <= 0 || d > 5*time.Second {
		t.Errorf("trace deadline header = %q, want a duration in (0, 5s]", headers["/v1/sessions/s-1/trace"])
	}
	if got := headers["/v1/sessions/s-1"]; got != "" {
		t.Errorf("deadline header without a context deadline = %q, want empty", got)
	}
}
