package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Session mirrors the service's session description (serve.Info).
type Session struct {
	ID           string    `json:"id"`
	State        string    `json:"state"`
	Algorithm    string    `json:"algorithm"`
	Workload     string    `json:"workload,omitempty"`
	N            int       `json:"n"`
	DT           float64   `json:"dt"`
	Seed         uint64    `json:"seed"`
	Steps        int       `json:"steps"`
	Created      time.Time `json:"created"`
	LastUsed     time.Time `json:"last_used"`
	TraceSamples int       `json:"trace_samples"`
	// Config is the fully resolved physics configuration the session
	// runs with (every server default applied). Its Scenario field echoes
	// the scenario-pack name for pack-created sessions.
	Config EffectiveConfig `json:"config"`
	// Tenant is the owning tenant's name (multi-tenant servers only).
	Tenant     string `json:"tenant,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`
}

// CreateSessionRequest mirrors the JSON body of POST /v1/sessions. Put
// physics settings in Config; the flat Algorithm/DT/Theta/Eps/G/
// Sequential/RebuildEvery fields are deprecated aliases (zero inherits
// the server default, so explicit zeros are not expressible through
// them), and responses to requests using them carry a Deprecation header.
// When both are present the server resolves Config with precedence.
type CreateSessionRequest struct {
	Workload string `json:"workload,omitempty"`
	N        int    `json:"n"`
	Seed     uint64 `json:"seed,omitempty"`

	// Scenario creates the session from a named scenario pack instead of
	// raw workload/n/seed (mutually exclusive with those fields; put the
	// overrides inside the scenario object).
	Scenario *ScenarioSpec `json:"scenario,omitempty"`

	// Config is the physics configuration (explicit zeros honoured). With
	// a scenario it is merged over the pack's preset.
	Config *SessionConfig `json:"config,omitempty"`

	// Deprecated: flat physics fields, superseded by Config.
	Algorithm    string  `json:"algorithm,omitempty"`
	DT           float64 `json:"dt,omitempty"`
	Theta        float64 `json:"theta,omitempty"`
	Eps          float64 `json:"eps,omitempty"`
	G            float64 `json:"g,omitempty"`
	Sequential   bool    `json:"sequential,omitempty"`
	RebuildEvery int     `json:"rebuild_every,omitempty"`

	ValidateEvery int `json:"validate_every,omitempty"`
}

// StepResult mirrors the response of POST /v1/sessions/{id}/step.
type StepResult struct {
	ID             string  `json:"id"`
	Requested      int     `json:"requested"`
	Completed      int     `json:"completed"`
	Steps          int     `json:"steps"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Interrupted    bool    `json:"interrupted,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// CreateSession creates a new session from a workload generator spec.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (Session, error) {
	var s Session
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions", nil, req, &s)
	return s, err
}

// Session returns one session's description.
func (c *Client) Session(ctx context.Context, id string) (Session, error) {
	var s Session
	err := c.doJSON(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, nil, &s)
	return s, err
}

// DeleteSession removes a session, cancelling any in-flight run.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil, nil)
}

// Step advances a session by steps. On an interrupted request the
// returned StepResult still carries the partial progress the server
// reported alongside the non-nil error.
func (c *Client) Step(ctx context.Context, id string, steps int) (StepResult, error) {
	var res StepResult
	body := struct {
		Steps int `json:"steps"`
	}{steps}
	err := c.doJSON(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/step", nil, body, &res)
	if err != nil {
		// An interrupted step answers with the error envelope wrapping the
		// partial result; surface it so callers can resume.
		var ae *APIError
		if asAPIError(err, &ae) && len(ae.Partial) > 0 {
			json.Unmarshal(ae.Partial, &res)
		}
	}
	return res, err
}

// ListSessions returns one page of sessions ordered by session ID,
// starting after cursor ("" = from the beginning), plus the next page's
// cursor ("" on the final page). limit 0 uses the server default.
func (c *Client) ListSessions(ctx context.Context, limit int, cursor string) ([]Session, string, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	var page struct {
		Sessions   []Session `json:"sessions"`
		NextCursor string    `json:"next_cursor"`
	}
	if err := c.doJSON(ctx, http.MethodGet, "/v1/sessions", q, nil, &page); err != nil {
		return nil, "", err
	}
	return page.Sessions, page.NextCursor, nil
}

// Sessions iterates over every session, following the list cursor page by
// page. A fetch error is yielded once (with a zero Session) and ends the
// iteration. pageSize 0 uses the server default.
//
//	for s, err := range c.Sessions(ctx, 0) {
//	    if err != nil { return err }
//	    ...
//	}
func (c *Client) Sessions(ctx context.Context, pageSize int) iter.Seq2[Session, error] {
	return func(yield func(Session, error) bool) {
		cursor := ""
		for {
			page, next, err := c.ListSessions(ctx, pageSize, cursor)
			if err != nil {
				yield(Session{}, err)
				return
			}
			for _, s := range page {
				if !yield(s, nil) {
					return
				}
			}
			if next == "" {
				return
			}
			cursor = next
		}
	}
}

// snapshotContentType is the media type of the binary checkpoint wire
// format on the upload and download paths.
const snapshotContentType = "application/x-nbody-snapshot"

// SnapshotParams are the simulation parameters accompanying a snapshot
// upload (the checkpoint carries positions/velocities/masses but not the
// solver configuration). Put physics settings in Config (sent as the
// JSON-encoded `config` query parameter); the flat fields are deprecated
// aliases with zero-inherits-default semantics. DT is required > 0, in
// either form.
type SnapshotParams struct {
	// Config is the physics configuration (explicit zeros honoured).
	Config *SessionConfig

	// Deprecated: flat physics fields, superseded by Config.
	Algorithm    string
	DT           float64
	Theta        float64
	Eps          float64
	G            float64
	Sequential   bool
	RebuildEvery int
}

func (p SnapshotParams) query() (url.Values, error) {
	q := url.Values{}
	if p.Config != nil {
		b, err := json.Marshal(p.Config)
		if err != nil {
			return nil, fmt.Errorf("client: encoding snapshot config: %w", err)
		}
		q.Set("config", string(b))
	}
	if p.Algorithm != "" {
		q.Set("algorithm", p.Algorithm)
	}
	setF := func(key string, v float64) {
		if v != 0 {
			q.Set(key, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	setF("dt", p.DT)
	setF("theta", p.Theta)
	setF("eps", p.Eps)
	setF("g", p.G)
	if p.Sequential {
		q.Set("sequential", "true")
	}
	if p.RebuildEvery != 0 {
		q.Set("rebuild_every", strconv.Itoa(p.RebuildEvery))
	}
	return q, nil
}

// CreateSessionFromSnapshot uploads a binary checkpoint (the snapshot
// wire format, e.g. a prior DownloadSnapshot) and resumes it as a new
// session. The upload streams r and is therefore never retried; callers
// wanting retry should buffer and re-call.
func (c *Client) CreateSessionFromSnapshot(ctx context.Context, r io.Reader, p SnapshotParams) (Session, error) {
	u := c.baseURL + "/v1/sessions"
	q, err := p.query()
	if err != nil {
		return Session{}, err
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, r)
	if err != nil {
		return Session{}, fmt.Errorf("client: POST /v1/sessions: %w", err)
	}
	req.Header.Set("Content-Type", snapshotContentType)
	c.authorize(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return Session{}, fmt.Errorf("client: POST /v1/sessions: %w", err)
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return Session{}, decodeAPIError(resp, body)
	}
	if rerr != nil {
		return Session{}, fmt.Errorf("client: reading create response: %w", rerr)
	}
	var s Session
	if err := json.Unmarshal(body, &s); err != nil {
		return Session{}, fmt.Errorf("client: decoding create response: %w", err)
	}
	return s, nil
}

// DownloadSnapshot streams a session's binary checkpoint. The caller must
// Close the returned reader. The format's trailing checksum flags
// truncation, so verify with the snapshot tooling before trusting a
// download that ended early.
func (c *Client) DownloadSnapshot(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.getStream(ctx, "/v1/sessions/"+url.PathEscape(id)+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// SessionTrace streams a session's accumulated diagnostics trace (CSV).
// The caller must Close the returned reader.
func (c *Client) SessionTrace(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.getStream(ctx, "/v1/sessions/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// asAPIError is errors.As specialized to *APIError without re-importing
// errors at every call site.
func asAPIError(err error, target **APIError) bool {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			*target = ae
			return true
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		default:
			return false
		}
	}
	return false
}
