package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitJobDeletionRaceEndsAsCancelled is the regression for WaitJob
// erroring when it races a cancel-then-delete: once the job has been
// observed, a job_not_found poll means the record reached a terminal
// state and was pruned, so the wait must end successfully with the last
// observed record marked cancelled — not surface a spurious error for a
// normal outcome.
func TestWaitJobDeletionRaceEndsAsCancelled(t *testing.T) {
	var polls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"id":"j-1","state":"queued","class":"low","n":32,"steps":10,"steps_done":0}`)
			return
		}
		// The record was cancelled and deleted between polls.
		writeEnvelope(w, http.StatusNotFound, CodeJobNotFound, "no such job j-1")
	}))
	defer srv.Close()
	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))

	j, err := c.WaitJob(context.Background(), "j-1", time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob across the deletion race = %v, want a terminal record", err)
	}
	if j.State != JobCancelled {
		t.Errorf("state = %q, want %q", j.State, JobCancelled)
	}
	if !j.Terminal() {
		t.Error("returned record is not terminal")
	}
	if j.ID != "j-1" || j.Steps != 10 {
		t.Errorf("record lost the last observed fields: %+v", j)
	}
	if j.Finished.IsZero() {
		t.Error("finished timestamp not stamped on the synthesized record")
	}
	if got := polls.Load(); got != 2 {
		t.Errorf("polled %d times, want 2", got)
	}
}

// TestWaitJobUnknownIDStillErrors: a job_not_found on the very first poll
// is a genuinely unknown ID, not a deletion race, and must stay an error.
func TestWaitJobUnknownIDStillErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusNotFound, CodeJobNotFound, "no such job j-404")
	}))
	defer srv.Close()
	c, _ := newTestClient(t, srv, WithRetries(0, 0, 0))

	_, err := c.WaitJob(context.Background(), "j-404", time.Millisecond)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeJobNotFound {
		t.Fatalf("WaitJob on an unknown ID = %v, want job_not_found APIError", err)
	}
}
