package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// WatchEvent mirrors one NDJSON record of GET /v1/sessions/{id}/watch:
// conservation diagnostics plus spatial bounds and per-phase wall time of
// the interval since the previous event.
type WatchEvent struct {
	Step          int                `json:"step"`
	Time          float64            `json:"time"`
	KineticEnergy float64            `json:"kinetic_energy"`
	Potential     float64            `json:"potential"`
	TotalEnergy   float64            `json:"total_energy"`
	MomentumNorm  float64            `json:"momentum_norm"`
	BoundsMin     [3]float64         `json:"bounds_min"`
	BoundsMax     [3]float64         `json:"bounds_max"`
	PhaseSeconds  map[string]float64 `json:"phase_seconds,omitempty"`
}

// Watch reconnect/stall policy defaults.
const (
	defaultWatchReconnects = 5
	defaultServerHeartbeat = 10 * time.Second
	minWatchStall          = time.Second
	stallHeartbeatMultiple = 3
)

// WatchOptions configures a watch stream.
type WatchOptions struct {
	// Steps is how many further steps to advance and watch. Required > 0.
	Steps int
	// Every emits an event every Every steps (0 = every step).
	Every int
	// Heartbeat overrides the server's idle-heartbeat interval (0 = the
	// server default of 10s). The watcher uses it to size stall detection.
	Heartbeat time.Duration
	// MaxReconnects bounds how many times a broken or stalled stream is
	// transparently re-established, resuming at the last seen step.
	// 0 = the default (5); negative disables reconnecting.
	MaxReconnects int
	// StallTimeout is how long the watcher waits without any traffic —
	// events or heartbeat comments — before declaring the stream stalled
	// and reconnecting. 0 = 3× the heartbeat interval.
	StallTimeout time.Duration
}

// Watcher is an open watch stream. Next returns events in order until the
// requested steps complete (io.EOF) or a terminal error occurs; broken
// and stalled connections are re-established transparently, resuming at
// the step after the last event seen. Watcher is not safe for concurrent
// use; always Close it.
type Watcher struct {
	c    *Client
	ctx  context.Context
	id   string
	opts WatchOptions

	target     int // absolute session step count to reach
	lastStep   int // absolute step of the last event seen (-1 before any)
	reconnects int
	stall      time.Duration

	body  io.Closer
	lines chan watchLine
	done  bool
}

type watchLine struct {
	text string
	err  error
}

// Watch opens a reconnecting event stream that advances the session by
// opts.Steps steps. It first reads the session's current step count so a
// reconnect can resume with exactly the remaining steps.
func (c *Client) Watch(ctx context.Context, id string, opts WatchOptions) (*Watcher, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("client: watch: Steps must be positive, got %d", opts.Steps)
	}
	info, err := c.Session(ctx, id)
	if err != nil {
		return nil, err
	}
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = defaultServerHeartbeat
	}
	stall := opts.StallTimeout
	if stall <= 0 {
		stall = max(stallHeartbeatMultiple*hb, minWatchStall)
	}
	w := &Watcher{
		c:        c,
		ctx:      ctx,
		id:       id,
		opts:     opts,
		target:   info.Steps + opts.Steps,
		lastStep: -1,
		stall:    stall,
	}
	if err := w.connect(info.Steps); err != nil {
		return nil, err
	}
	return w, nil
}

// connect opens (or re-opens) the stream asking for target−from steps and
// starts the line reader.
func (w *Watcher) connect(from int) error {
	remaining := w.target - from
	if remaining <= 0 {
		w.done = true
		return nil
	}
	q := url.Values{}
	q.Set("steps", strconv.Itoa(remaining))
	if w.opts.Every > 0 {
		q.Set("every", strconv.Itoa(w.opts.Every))
	}
	if w.opts.Heartbeat > 0 {
		q.Set("heartbeat", w.opts.Heartbeat.String())
	}
	resp, err := w.c.getStream(w.ctx, "/v1/sessions/"+url.PathEscape(w.id)+"/watch", q)
	if err != nil {
		return err
	}
	w.body = resp.Body
	lines := make(chan watchLine, 16)
	w.lines = lines
	go func(body io.Reader) {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			lines <- watchLine{text: sc.Text()}
		}
		err := sc.Err()
		if err == nil {
			err = io.EOF
		}
		lines <- watchLine{err: err}
		close(lines)
	}(resp.Body)
	return nil
}

// closeStream tears down the current connection (the reader goroutine
// exits once the body closes).
func (w *Watcher) closeStream() {
	if w.body != nil {
		w.body.Close()
		w.body = nil
	}
	w.lines = nil
}

// reconnect tears down the broken stream and re-opens it for the steps
// still outstanding, if the budget allows. cause is what broke the stream.
func (w *Watcher) reconnect(cause error) error {
	w.closeStream()
	maxR := w.opts.MaxReconnects
	if maxR == 0 {
		maxR = defaultWatchReconnects
	}
	if w.reconnects >= maxR {
		return fmt.Errorf("client: watch %s: stream broken after %d reconnects: %w", w.id, w.reconnects, cause)
	}
	w.reconnects++
	from := w.lastStep
	if from < 0 {
		from = w.target - w.opts.Steps
	}
	if err := w.connect(from); err != nil {
		return fmt.Errorf("client: watch %s: reconnect: %w", w.id, err)
	}
	return nil
}

// Next returns the next event. io.EOF signals the requested steps
// completed; any other error is terminal for the stream.
func (w *Watcher) Next() (WatchEvent, error) {
	timer := time.NewTimer(w.stall)
	defer timer.Stop()
	for {
		if w.done || w.lines == nil {
			w.done = true
			return WatchEvent{}, io.EOF
		}
		select {
		case <-w.ctx.Done():
			w.closeStream()
			return WatchEvent{}, w.ctx.Err()
		case <-timer.C:
			if err := w.reconnect(fmt.Errorf("no traffic for %v", w.stall)); err != nil {
				return WatchEvent{}, err
			}
		case ln, ok := <-w.lines:
			if !ok {
				// Reader finished after delivering its final error; the
				// error entry arrives before the close, so treat a bare
				// close as EOF.
				ln = watchLine{err: io.EOF}
			}
			if ln.err != nil {
				if w.lastStep >= w.target {
					w.closeStream()
					w.done = true
					return WatchEvent{}, io.EOF
				}
				if err := w.reconnect(ln.err); err != nil {
					return WatchEvent{}, err
				}
				break
			}
			line := strings.TrimSpace(ln.text)
			if line == "" || strings.HasPrefix(line, ":") {
				// Heartbeat or padding: proves the server is alive.
				break
			}
			ev, apiErr, perr := decodeWatchLine(line)
			if perr != nil {
				if err := w.reconnect(perr); err != nil {
					return WatchEvent{}, err
				}
				break
			}
			if apiErr != nil {
				// A mid-stream envelope is the server telling us the run
				// is over (session failed, shutdown, …) — terminal.
				w.closeStream()
				w.done = true
				return WatchEvent{}, apiErr
			}
			w.lastStep = ev.Step
			return ev, nil
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(w.stall)
	}
}

// Close tears down the stream. Safe to call multiple times.
func (w *Watcher) Close() error {
	w.closeStream()
	w.done = true
	return nil
}

// decodeWatchLine splits one NDJSON line into an event or a mid-stream
// error envelope.
func decodeWatchLine(line string) (WatchEvent, *APIError, error) {
	var probe struct {
		Error *struct {
			Code         string `json:"code"`
			Message      string `json:"message"`
			SessionState string `json:"session_state"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(line), &probe); err != nil {
		return WatchEvent{}, nil, fmt.Errorf("client: watch: malformed stream line: %w", err)
	}
	if probe.Error != nil {
		return WatchEvent{}, &APIError{
			Status:       http.StatusOK, // stream already committed 200
			Code:         probe.Error.Code,
			Message:      probe.Error.Message,
			SessionState: probe.Error.SessionState,
		}, nil
	}
	var ev WatchEvent
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		return WatchEvent{}, nil, fmt.Errorf("client: watch: malformed event: %w", err)
	}
	return ev, nil, nil
}

// WatchEvents is the range-over-func form of Watch: it yields each event,
// then a final (zero event, error) pair only when the stream ended
// abnormally. A clean completion just ends the loop.
//
//	for ev, err := range c.WatchEvents(ctx, id, client.WatchOptions{Steps: 100}) {
//	    if err != nil { return err }
//	    fmt.Println(ev.Step, ev.TotalEnergy)
//	}
func (c *Client) WatchEvents(ctx context.Context, id string, opts WatchOptions) iter.Seq2[WatchEvent, error] {
	return func(yield func(WatchEvent, error) bool) {
		w, err := c.Watch(ctx, id, opts)
		if err != nil {
			yield(WatchEvent{}, err)
			return
		}
		defer w.Close()
		for {
			ev, err := w.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(WatchEvent{}, err)
				return
			}
			if !yield(ev, nil) {
				return
			}
		}
	}
}
