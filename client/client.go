// Package client is the Go SDK for the nbody-serve /v1 HTTP API: session
// CRUD and stepping, NDJSON watch streaming with automatic reconnect,
// snapshot upload/download, the batch-job API, and cursor-following list
// iteration. It is dependency-free (standard library only), threads a
// context through every call, decodes the service's stable error envelope
// into *APIError, and automatically retries load-shedding responses
// (429, 503; plus gateway failures 502/504 on idempotent GETs) honoring
// the server's Retry-After with capped, fully jittered exponential
// backoff as the fallback.
//
// Basic use:
//
//	c, err := client.New("http://127.0.0.1:8080")
//	s, err := c.CreateSession(ctx, client.CreateSessionRequest{Workload: "plummer", N: 4096, DT: 1e-3})
//	res, err := c.Step(ctx, s.ID, 100)
//	for ev, err := range c.WatchEvents(ctx, s.ID, client.WatchOptions{Steps: 100}) { ... }
//
// The SDK is also the seam a remote job Runner would speak: anything that
// can drive /v1 through this package can act as a shard backend.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Default retry policy: up to defaultMaxRetries re-sends of a shed
// request, backing off exponentially from defaultRetryBase up to
// defaultRetryCap when the server gives no Retry-After. A server-provided
// Retry-After is honored as given, capped at maxHonoredRetryAfter so a
// misbehaving server cannot park a client forever.
const (
	defaultMaxRetries    = 3
	defaultRetryBase     = 100 * time.Millisecond
	defaultRetryCap      = 5 * time.Second
	maxHonoredRetryAfter = 30 * time.Second
)

// Client is a connection to one nbody-serve instance. It is safe for
// concurrent use; the zero value is not usable — construct with New.
type Client struct {
	baseURL    string
	httpc      *http.Client
	apiKey     string
	maxRetries int
	retryBase  time.Duration
	retryCap   time.Duration

	// rand and sleep are seams for deterministic tests.
	rand  func() float64
	sleep func(context.Context, time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is a dedicated http.Client with no timeout —
// bound calls with the context instead.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithAPIKey authenticates every request with the tenant API key: the SDK
// sends it as "Authorization: Bearer <key>" on the typed methods and
// streaming downloads. Required against a server started with -tenants;
// ignored (the header is simply unused) by single-tenant servers.
// RawRequest is exempt — it forwards headers verbatim for proxies.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithRetries sets the retry policy for retryable responses (429/503,
// plus 502/504 on idempotent GETs): maxRetries re-sends (0 disables
// retrying entirely), backing off from base up to cap when the server
// provides no Retry-After. Non-positive base/cap keep the defaults.
func WithRetries(maxRetries int, base, cap time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = maxRetries
		if base > 0 {
			c.retryBase = base
		}
		if cap > 0 {
			c.retryCap = cap
		}
	}
}

// New returns a Client for the service at baseURL (e.g.
// "http://127.0.0.1:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) (*Client, error) {
	baseURL = strings.TrimRight(baseURL, "/")
	if baseURL == "" {
		return nil, errors.New("client: base URL must not be empty")
	}
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("client: base URL: %w", err)
	}
	c := &Client{
		baseURL:    baseURL,
		httpc:      &http.Client{},
		maxRetries: defaultMaxRetries,
		retryBase:  defaultRetryBase,
		retryCap:   defaultRetryCap,
		rand:       rand.Float64,
		sleep:      sleepContext,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the service base URL the client was built with.
func (c *Client) BaseURL() string { return c.baseURL }

// Ready probes GET /readyz: nil when the server is accepting work, an
// *APIError (or transport error) otherwise. Useful to gate load against a
// server that is still booting or already draining.
func (c *Client) Ready(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/readyz", nil, "", nil)
	return err
}

// deadlineHeader mirrors serve.DeadlineHeader: the caller's REMAINING
// time budget as a Go duration string, stamped on every request whose
// context carries a deadline so router and shard can abandon work the
// caller has already given up on.
const deadlineHeader = "X-NBody-Deadline"

// authorize stamps the configured API key as a bearer credential.
func (c *Client) authorize(req *http.Request) {
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
}

// stampDeadline advertises the context's remaining budget upstream.
func stampDeadline(req *http.Request) {
	if dl, ok := req.Context().Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			req.Header.Set(deadlineHeader, remain.String())
		}
	}
}

// sleepContext waits for d or the context, whichever ends first.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether a response status is worth re-sending.
// 429/503 mean the server shed the request before doing any work
// (admission control, drain, or a router refusing to place on an
// unhealthy shard), so any method retries them — a retry cannot
// double-apply. 502/504 come from a routing tier whose hop to the shard
// broke mid-request, and the router emits them precisely when the
// request MAY have reached the shard; only idempotent GETs retry those
// (honoring Retry-After when present) — re-sending a POST/PATCH/DELETE
// on 502 could double-apply a write (advance a simulation twice,
// duplicate a job submit).
func retryable(method string, status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return method == http.MethodGet
	}
	return false
}

// backoff is the fallback delay for attempt (0-based) when the server
// sent no Retry-After: exponential from retryBase capped at retryCap,
// fully jittered (uniform over [0, cap]) so a fleet of clients shed
// together does not retry together.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.retryBase << attempt
	if d > c.retryCap || d <= 0 {
		d = c.retryCap
	}
	j := time.Duration(c.rand() * float64(d))
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}

// retryDelay picks the wait before re-sending: the server's Retry-After
// when present (clamped to maxHonoredRetryAfter), the jittered backoff
// otherwise.
func (c *Client) retryDelay(e *APIError, attempt int) time.Duration {
	if e != nil && e.RetryAfter > 0 {
		return min(e.RetryAfter, maxHonoredRetryAfter)
	}
	return c.backoff(attempt)
}

// do issues one API request with the retry policy and returns the body
// and headers of the 2xx response. body may be nil; it is re-sent as-is
// on each retry (retried statuses are either shed before any
// server-side work, so re-sending is safe even for POST, or gateway
// failures retried only for idempotent GETs). Transport-level errors
// are likewise retried only for GET — anything else may have reached
// the server.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, contentType string, body []byte) ([]byte, http.Header, error) {
	u := c.baseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	for attempt := 0; ; attempt++ {
		// A context that died during the previous backoff (or before the
		// first send) must not open a connection at all.
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		c.authorize(req)
		stampDeadline(req)
		resp, err := c.httpc.Do(req)
		if err != nil {
			if method == http.MethodGet && attempt < c.maxRetries && ctx.Err() == nil {
				if serr := c.sleep(ctx, c.backoff(attempt)); serr != nil {
					return nil, nil, serr
				}
				continue
			}
			return nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		rb, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			if rerr != nil {
				return nil, nil, fmt.Errorf("client: %s %s: reading response: %w", method, path, rerr)
			}
			return rb, resp.Header, nil
		}
		apiErr := decodeAPIError(resp, rb)
		if retryable(method, resp.StatusCode) && attempt < c.maxRetries {
			if serr := c.sleep(ctx, c.retryDelay(apiErr, attempt)); serr != nil {
				return nil, nil, serr
			}
			continue
		}
		return nil, nil, apiErr
	}
}

// doJSON sends in (when non-nil) as a JSON body and decodes the 2xx
// response into out (when non-nil).
func (c *Client) doJSON(ctx context.Context, method, path string, q url.Values, in, out any) error {
	var body []byte
	contentType := ""
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding %s %s body: %w", method, path, err)
		}
		body = b
		contentType = "application/json"
	}
	rb, _, err := c.do(ctx, method, path, q, contentType, body)
	if err != nil {
		return err
	}
	if out != nil && len(rb) > 0 {
		if err := json.Unmarshal(rb, out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// getStream issues a streaming GET (watch, snapshot and trace downloads)
// and returns the open response. Shed (429/503) responses are retried
// like do; once a 2xx status arrives the stream is the caller's to drain
// and close.
func (c *Client) getStream(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := c.baseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("client: GET %s: %w", path, err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, fmt.Errorf("client: GET %s: %w", path, err)
		}
		c.authorize(req)
		stampDeadline(req)
		resp, err := c.httpc.Do(req)
		if err != nil {
			if attempt < c.maxRetries && ctx.Err() == nil {
				if serr := c.sleep(ctx, c.backoff(attempt)); serr != nil {
					return nil, serr
				}
				continue
			}
			return nil, fmt.Errorf("client: GET %s: %w", path, err)
		}
		if resp.StatusCode/100 == 2 {
			return resp, nil
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		apiErr := decodeAPIError(resp, rb)
		if retryable(http.MethodGet, resp.StatusCode) && attempt < c.maxRetries {
			if serr := c.sleep(ctx, c.retryDelay(apiErr, attempt)); serr != nil {
				return nil, serr
			}
			continue
		}
		return nil, apiErr
	}
}

// decodeAPIError turns a non-2xx response into *APIError, decoding the
// service's JSON error envelope when present and falling back to the raw
// body otherwise.
func decodeAPIError(resp *http.Response, body []byte) *APIError {
	e := &APIError{
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get("X-Request-ID"),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil && n >= 0 {
			e.RetryAfter = time.Duration(n) * time.Second
		}
	}
	var env struct {
		Error struct {
			Code         string `json:"code"`
			Message      string `json:"message"`
			SessionState string `json:"session_state"`
			Shard        string `json:"shard"`
		} `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
		e.SessionState = env.Error.SessionState
		e.Shard = env.Error.Shard
		if e.Shard == "" {
			e.Shard = resp.Header.Get("X-NBody-Shard")
		}
		e.Partial = env.Result
		return e
	}
	e.Shard = resp.Header.Get("X-NBody-Shard")
	msg := strings.TrimSpace(string(body))
	if len(msg) > 256 {
		msg = msg[:256]
	}
	e.Message = msg
	return e
}

// RawRequest issues one request verbatim and returns the raw response,
// whatever its status — no retry, no envelope decoding, no body
// buffering. It exists for proxies (nbody-router) that forward /v1
// traffic byte-for-byte and must stream bodies (watch NDJSON, snapshot
// downloads) and relay error envelopes untouched; SDK users should
// prefer the typed methods. pathAndQuery is appended to the base URL
// as-is; header entries (may be nil) are copied onto the request. The
// response body is the caller's to drain and close.
func (c *Client) RawRequest(ctx context.Context, method, pathAndQuery string, header http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+pathAndQuery, body)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, pathAndQuery, err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, pathAndQuery, err)
	}
	return resp, nil
}
