package client

// Mirror types of the service's physics-configuration surface
// (internal/simcfg). The SDK deliberately re-declares them instead of
// importing server internals so it stays a standalone stdlib-only module
// surface.

// TreeReuseConfig mirrors the `tree_reuse` sub-object: spatial-structure
// rebuild cadence and adaptive in-place refit.
type TreeReuseConfig struct {
	// RebuildEvery rebuilds the structure every k steps (0 = server
	// default of 1). With RefitThreshold set it acts as a hard cadence
	// cap.
	RebuildEvery int `json:"rebuild_every"`
	// RefitThreshold > 0 enables adaptive reuse: the structure is refit
	// in place until accumulated drift exceeds this fraction of the root
	// box extent.
	RefitThreshold float64 `json:"refit_threshold"`
}

// SessionConfig mirrors the `config` object of POST /v1/sessions and
// POST /v1/jobs. Every field is optional; absent fields inherit server
// defaults. Pointer fields distinguish an explicit zero (Eps: Float64(0)
// = unsoftened exact Newtonian gravity) from absence — the deprecated
// flat fields cannot express that.
type SessionConfig struct {
	// Algorithm is the force solver ("octree", "bvh", "all-pairs", ...).
	Algorithm string `json:"algorithm,omitempty"`
	// Layout is the force-evaluation data path: "flat" (interaction
	// lists, the default) or "walk" (per-body tree walks).
	Layout string `json:"layout,omitempty"`
	// DT is the integration timestep; required here or via the deprecated
	// flat field.
	DT float64 `json:"dt,omitempty"`
	// Theta is the Barnes-Hut opening threshold.
	Theta *float64 `json:"theta,omitempty"`
	// Eps is the Plummer softening length.
	Eps *float64 `json:"eps,omitempty"`
	// G is the gravitational constant.
	G *float64 `json:"g,omitempty"`
	// Sequential replaces every execution policy with seq.
	Sequential *bool `json:"sequential,omitempty"`
	// TreeReuse configures structure rebuild cadence and adaptive refit.
	TreeReuse *TreeReuseConfig `json:"tree_reuse,omitempty"`
	// Pipeline schedules the session's steps as phase tasks on the
	// server's shared phase-graph executor instead of whole-step slots.
	// Trajectories are bit-exact either way; pipelined sessions
	// interleave with each other at phase granularity under load.
	Pipeline *bool `json:"pipeline,omitempty"`
}

// ScenarioSpec mirrors the `scenario` object of POST /v1/sessions and
// POST /v1/jobs: a named scenario pack (see GET /v1/scenarios) with
// optional body-count and seed overrides. Mutually exclusive with the
// top-level workload/n/seed fields — the pack owns those.
type ScenarioSpec struct {
	// Name is the pack name ("plummer", "solar-system", "galaxy-merger",
	// "tsne-embedding", ...).
	Name string `json:"name"`
	// N overrides the pack's default body count (0 keeps the default).
	N int `json:"n,omitempty"`
	// Seed seeds the pack's workload generator.
	Seed uint64 `json:"seed,omitempty"`
}

// EffectiveConfig mirrors the fully resolved configuration the server
// echoes in session and job descriptions: every default applied, every
// field explicit.
type EffectiveConfig struct {
	Algorithm  string          `json:"algorithm"`
	Layout     string          `json:"layout"`
	DT         float64         `json:"dt"`
	Theta      float64         `json:"theta"`
	Eps        float64         `json:"eps"`
	G          float64         `json:"g"`
	Sequential bool            `json:"sequential"`
	TreeReuse  TreeReuseConfig `json:"tree_reuse"`
	Pipeline   bool            `json:"pipeline"`
	// Scenario echoes the scenario-pack name the session or job was
	// created from ("" for raw workload/n/seed submissions).
	Scenario string `json:"scenario,omitempty"`
}

// Request converts an echoed effective configuration back into a request
// config with every field pinned explicitly, so resubmitting it elsewhere
// (e.g. a drain handoff) reproduces the exact same resolution — including
// values that happen to equal zero.
func (e EffectiveConfig) Request() *SessionConfig {
	tr := e.TreeReuse
	return &SessionConfig{
		Algorithm:  e.Algorithm,
		Layout:     e.Layout,
		DT:         e.DT,
		Theta:      Float64(e.Theta),
		Eps:        Float64(e.Eps),
		G:          Float64(e.G),
		Sequential: Bool(e.Sequential),
		TreeReuse:  &tr,
		Pipeline:   Bool(e.Pipeline),
	}
}

// Float64 returns a pointer to v, for SessionConfig's optional fields.
func Float64(v float64) *float64 { return &v }

// Bool returns a pointer to v, for SessionConfig.Sequential.
func Bool(v bool) *bool { return &v }
