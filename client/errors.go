package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// The service's stable machine-readable error codes, mirrored from the
// /v1 error envelope. Dispatch on these, never on message text.
const (
	CodeSessionNotFound = "session_not_found"
	CodeSessionFailed   = "session_failed"
	CodeSessionBusy     = "session_busy"
	CodeOverloaded      = "overloaded"
	CodeShuttingDown    = "shutting_down"
	CodeInvalidRequest  = "invalid_request"
	CodeInvalidSnapshot = "invalid_snapshot"
	CodeClientClosed    = "client_closed_request"
	// CodeDeadlineExceeded: the request's propagated time budget
	// (X-NBody-Deadline, or the router's per-request cap) ran out before
	// the work finished; server-side work was abandoned at the next
	// checkpoint. Carried on 504 responses.
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeInternal         = "internal"
	CodeJobNotFound      = "job_not_found"
	CodeJobNotReady      = "job_not_ready"
	CodeJobNotQueued     = "job_not_queued"
	// CodeUnauthorized: the request carried no API key, or an unknown one,
	// against a multi-tenant server (401). Configure the client with
	// WithAPIKey.
	CodeUnauthorized = "unauthorized"
	// CodeQuotaExceeded: the authenticated tenant is at one of its quotas
	// (request rate, live sessions, queued jobs); other tenants are
	// unaffected. Carried on 429 with a per-tenant Retry-After.
	CodeQuotaExceeded = "quota_exceeded"
)

// Router-tier error codes: set by nbody-router when it cannot complete a
// proxied request, never by a shard itself.
const (
	// CodeShardUnavailable: the shard owning the requested ID is down and
	// the operation is a write that must not silently run elsewhere (503).
	CodeShardUnavailable = "shard_unavailable"
	// CodeNoHealthyShards: no shard is accepting new placements (503).
	CodeNoHealthyShards = "no_healthy_shards"
	// CodeBadGateway: the proxied request failed at the transport level
	// after reaching the shard, so it may or may not have applied (502).
	CodeBadGateway = "bad_gateway"
)

// APIError is any non-2xx response from the service, carrying the decoded
// error envelope alongside the HTTP status.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's stable machine-readable code (one of the
	// Code* constants), or "" when the response carried no envelope.
	Code string
	// Message is the envelope's human-readable message.
	Message string
	// SessionState is set when the error implies a known session
	// lifecycle state (e.g. "failed" for session_failed).
	SessionState string
	// Shard names the replica that produced the error in a sharded
	// deployment (from the envelope, falling back to the X-NBody-Shard
	// header); "" when the server runs unsharded.
	Shard string
	// RetryAfter is the server's parsed Retry-After header (zero when
	// absent). The client's automatic retry honors it; it is surfaced for
	// callers that retry themselves.
	RetryAfter time.Duration
	// RequestID echoes the response's X-Request-ID for log correlation.
	RequestID string
	// Partial carries the raw "result" member of the envelope when the
	// request made partial progress before failing (an interrupted step);
	// Step decodes it into the returned StepResult.
	Partial json.RawMessage
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("client: %s (%d): %s", e.Code, e.Status, e.Message)
	}
	return fmt.Sprintf("client: HTTP %d: %s", e.Status, e.Message)
}

// Overloaded reports whether the error is server backpressure (a shed
// request that is safe and sensible to retry later).
func (e *APIError) Overloaded() bool {
	return e.Status == http.StatusTooManyRequests || e.Code == CodeOverloaded
}

// ErrorCode extracts the envelope code from any error returned by this
// package ("" when err is not an *APIError or carried no envelope).
func ErrorCode(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsNotFound reports whether err is a session_not_found or job_not_found
// response.
func IsNotFound(err error) bool {
	c := ErrorCode(err)
	return c == CodeSessionNotFound || c == CodeJobNotFound
}

// IsOverloaded reports whether err is server backpressure (429 or the
// overloaded envelope code).
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Overloaded()
}
