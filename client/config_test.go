package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestCreateSessionConfigWire checks the request wire shape of the config
// object — explicit zeros must be present, unset optionals absent — and
// that the echoed effective config decodes.
func TestCreateSessionConfigWire(t *testing.T) {
	var gotBody []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotBody, _ = io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		io.WriteString(w, `{"id":"s-1","state":"idle","algorithm":"bvh","n":64,"dt":0.001,
			"config":{"algorithm":"bvh","layout":"flat","dt":0.001,"theta":0.5,"eps":0,"g":1,
			"sequential":false,"tree_reuse":{"rebuild_every":1,"refit_threshold":0.02}}}`)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, srv)

	s, err := c.CreateSession(context.Background(), CreateSessionRequest{
		Workload: "plummer",
		N:        64,
		Config: &SessionConfig{
			Algorithm: "bvh",
			DT:        0.001,
			Eps:       Float64(0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wire map[string]any
	if err := json.Unmarshal(gotBody, &wire); err != nil {
		t.Fatal(err)
	}
	cfg, ok := wire["config"].(map[string]any)
	if !ok {
		t.Fatalf("request body has no config object: %s", gotBody)
	}
	if eps, ok := cfg["eps"].(float64); !ok || eps != 0 {
		t.Errorf("explicit eps=0 must be serialized: %s", gotBody)
	}
	if _, present := cfg["theta"]; present {
		t.Errorf("unset theta must be omitted: %s", gotBody)
	}
	for _, deprecated := range []string{"algorithm", "dt", "theta", "eps", "g"} {
		if _, present := wire[deprecated]; present {
			t.Errorf("unused deprecated flat field %q serialized: %s", deprecated, gotBody)
		}
	}

	if s.Config.Algorithm != "bvh" || s.Config.Layout != "flat" || s.Config.Eps != 0 ||
		s.Config.TreeReuse.RefitThreshold != 0.02 {
		t.Errorf("echoed config decoded as %+v", s.Config)
	}
}

// TestJobSpecRoundTrip checks the drain-handoff reconstruction: records
// carrying the resolved config resubmit through it with every field
// pinned; records from servers predating the config surface fall back to
// the flat fields.
func TestJobSpecRoundTrip(t *testing.T) {
	eff := EffectiveConfig{
		Algorithm:  "octree",
		Layout:     "flat",
		DT:         0.5,
		Theta:      0.5,
		Eps:        0, // explicit zero — the flat fields cannot carry this
		G:          2,
		Sequential: false,
		TreeReuse:  TreeReuseConfig{RebuildEvery: 4, RefitThreshold: 0.01},
	}
	j := Job{ID: "j-1", Workload: "plummer", N: 128, Seed: 9, Steps: 100,
		Class: "high", ChunkSteps: 10, Config: eff}

	spec := j.Spec()
	if spec.Config == nil {
		t.Fatal("resolved-config record must resubmit through the config object")
	}
	if spec.Config.Eps == nil || *spec.Config.Eps != 0 {
		t.Errorf("explicit eps=0 not pinned: %+v", spec.Config.Eps)
	}
	if spec.Config.Theta == nil || *spec.Config.Theta != 0.5 ||
		spec.Config.TreeReuse == nil || spec.Config.TreeReuse.RebuildEvery != 4 {
		t.Errorf("pinned config %+v", spec.Config)
	}
	if spec.Algorithm != "" || spec.DT != 0 {
		t.Errorf("deprecated flat fields must stay empty alongside config: %+v", spec)
	}

	// Old-server record: no config echo, flat fields only.
	old := Job{ID: "j-2", Workload: "plummer", N: 64, Steps: 10,
		Algorithm: "bvh", DT: 0.25, Theta: 0.7}
	ospec := old.Spec()
	if ospec.Config != nil {
		t.Errorf("old record should not invent a config object: %+v", ospec.Config)
	}
	if ospec.Algorithm != "bvh" || ospec.DT != 0.25 || ospec.Theta != 0.7 {
		t.Errorf("flat fields lost: %+v", ospec)
	}
}
