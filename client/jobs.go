package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Job states, mirrored from the service.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobSucceeded = "succeeded"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Job priority classes.
const (
	JobClassHigh   = "high"
	JobClassNormal = "normal"
	JobClassLow    = "low"
)

// JobSpec mirrors the JSON body of POST /v1/jobs: the backing session's
// parameters plus the batch step count, priority class and checkpoint
// chunk size.
type JobSpec struct {
	// ID, when non-empty, requests the job be created under this ID
	// instead of a server-minted one (must be unique and well-formed).
	// The router tier relies on this to pin a job to the shard its ID
	// hashes to.
	ID       string `json:"id,omitempty"`
	Workload string `json:"workload,omitempty"`
	N        int    `json:"n"`
	Seed     uint64 `json:"seed,omitempty"`

	// Scenario derives the backing session from a named scenario pack
	// instead of raw workload/n/seed (mutually exclusive with those
	// fields; put the overrides inside the scenario object).
	Scenario *ScenarioSpec `json:"scenario,omitempty"`

	// Config is the physics configuration (explicit zeros honoured). With
	// a scenario it is merged over the pack's preset.
	Config *SessionConfig `json:"config,omitempty"`

	// Deprecated: flat physics fields, superseded by Config.
	Algorithm  string  `json:"algorithm,omitempty"`
	DT         float64 `json:"dt,omitempty"`
	Theta      float64 `json:"theta,omitempty"`
	Eps        float64 `json:"eps,omitempty"`
	G          float64 `json:"g,omitempty"`
	Sequential bool    `json:"sequential,omitempty"`

	Steps      int    `json:"steps"`
	Class      string `json:"class,omitempty"`
	ChunkSteps int    `json:"chunk_steps,omitempty"`
}

// Job mirrors the service's job description (jobs.Info).
type Job struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Class     string  `json:"class"`
	Workload  string  `json:"workload,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	N         int     `json:"n"`
	DT        float64 `json:"dt"`
	Seed      uint64  `json:"seed"`
	// Theta/Eps/G/Sequential/ChunkSteps echo the submitted spec, so a
	// record fetched from one shard can be resubmitted verbatim on
	// another (the router's drain handoff).
	Theta      float64 `json:"theta,omitempty"`
	Eps        float64 `json:"eps,omitempty"`
	G          float64 `json:"g,omitempty"`
	Sequential bool    `json:"sequential,omitempty"`
	ChunkSteps int     `json:"chunk_steps,omitempty"`
	// Config is the fully resolved physics configuration the job runs
	// with (servers predating the config surface leave it zero).
	Config EffectiveConfig `json:"config"`
	// Scenario echoes the scenario-pack name for pack-submitted jobs.
	Scenario string `json:"scenario,omitempty"`
	// Tenant is the submitting tenant's name (multi-tenant servers only).
	Tenant    string    `json:"tenant,omitempty"`
	Steps     int       `json:"steps"`
	StepsDone int       `json:"steps_done"`
	SessionID string    `json:"session_id,omitempty"`
	Attempts  int       `json:"attempts,omitempty"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
}

// Spec reconstructs the submission spec from a job record, the input a
// drain handoff needs to resubmit the job elsewhere under the same ID.
// Records from servers that echo the resolved config are resubmitted
// through it with every field pinned, so the handoff reproduces the
// exact physics — including explicit zeros the flat fields can't carry.
func (j Job) Spec() JobSpec {
	spec := JobSpec{
		ID:         j.ID,
		Workload:   j.Workload,
		N:          j.N,
		Seed:       j.Seed,
		Steps:      j.Steps,
		Class:      j.Class,
		ChunkSteps: j.ChunkSteps,
	}
	name := j.Scenario
	if name == "" {
		name = j.Config.Scenario
	}
	if name != "" {
		// Scenario and top-level workload/n/seed are mutually exclusive on
		// submission, so the handoff re-spells the generator parameters
		// inside the scenario object; the pinned config below reproduces
		// the physics regardless of the pack preset.
		spec.Scenario = &ScenarioSpec{Name: name, N: j.N, Seed: j.Seed}
		spec.Workload, spec.N, spec.Seed = "", 0, 0
	}
	if j.Config.Algorithm != "" {
		spec.Config = j.Config.Request()
	} else {
		spec.Algorithm = j.Algorithm
		spec.DT = j.DT
		spec.Theta = j.Theta
		spec.Eps = j.Eps
		spec.G = j.G
		spec.Sequential = j.Sequential
	}
	return spec
}

// Terminal reports whether the job reached a final state.
func (j Job) Terminal() bool {
	return j.State == JobSucceeded || j.State == JobFailed || j.State == JobCancelled
}

// SubmitJob enqueues a batch job (the server answers 202 Accepted with
// the queued record; execution is asynchronous — poll with Job or
// WaitJob).
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (Job, error) {
	var j Job
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", nil, spec, &j)
	return j, err
}

// Job returns one job's status.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, &j)
	return j, err
}

// Jobs lists every retained job record.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var page struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, nil, &page); err != nil {
		return nil, err
	}
	return page.Jobs, nil
}

// ReprioritizeJob moves a queued job to another priority class. Only
// queued jobs can move; running or terminal jobs answer 409
// job_not_queued.
func (c *Client) ReprioritizeJob(ctx context.Context, id, class string) (Job, error) {
	var j Job
	in := struct {
		Class string `json:"class"`
	}{Class: class}
	err := c.doJSON(ctx, http.MethodPatch, "/v1/jobs/"+url.PathEscape(id), nil, in, &j)
	return j, err
}

// CancelJob cancels a queued or running job, or deletes a terminal one.
// deleted reports the latter (the record is gone and job is zero);
// otherwise job is the cancelled record.
func (c *Client) CancelJob(ctx context.Context, id string) (job Job, deleted bool, err error) {
	rb, _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, "", nil)
	if err != nil {
		return Job{}, false, err
	}
	if len(rb) == 0 {
		// 204: terminal record deleted.
		return Job{}, true, nil
	}
	if err := json.Unmarshal(rb, &job); err != nil {
		return Job{}, false, fmt.Errorf("client: decoding cancel response: %w", err)
	}
	return job, false, nil
}

// JobSnapshot streams a job's snapshot artifact (the final checkpoint of
// a terminal job, the latest one otherwise). The caller must Close the
// returned reader. Jobs that have not created a session yet answer 409
// job_not_ready.
func (c *Client) JobSnapshot(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.getStream(ctx, "/v1/jobs/"+url.PathEscape(id)+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// JobTrace streams a job's diagnostics trace artifact (CSV). The caller
// must Close the returned reader.
func (c *Client) JobTrace(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.getStream(ctx, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// WaitJob polls a job until it reaches a terminal state or the context
// ends. poll 0 uses 250ms.
//
// A wait can race the job's deletion: DELETE on a terminal job removes
// the record entirely, so a poll that lands after a concurrent
// cancel-then-delete (or after the record was cancelled and pruned)
// answers 404 job_not_found even though the job did reach a terminal
// state. Erroring there would misreport a perfectly normal outcome, so
// once the job has been observed at least once, a job_not_found ends the
// wait successfully with the last observed record marked cancelled. A 404
// on the very first poll still errors — that really is an unknown ID.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	var last Job
	seen := false
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			var ae *APIError
			if seen && asAPIError(err, &ae) && ae.Code == CodeJobNotFound {
				last.State = JobCancelled
				if last.Finished.IsZero() {
					last.Finished = time.Now()
				}
				return last, nil
			}
			return Job{}, err
		}
		if j.Terminal() {
			return j, nil
		}
		last, seen = j, true
		if err := c.sleep(ctx, poll); err != nil {
			return j, err
		}
	}
}
